"""Common coins (paper §5, Definition 2).

The real thing is :class:`CommonCoinModule` — the shunning common coin
(SCC) obtained by plugging SVSS into the Canetti–Rabin common-coin
construction ([6] Fig 5-9):

1. Every process deals ``n`` uniform secrets in ``Z_u`` (one per *slot*,
   i.e. one "for" each process) via ``n`` SVSS sharings.
2. A process' *attach set* ``T_i`` is the first ``n - t`` dealers whose
   entire batch of sharings it completed; it is reliably broadcast.
3. A process *accepts* ``j`` once it received ``T_j`` and completed the
   slot-``j`` sharing of every dealer in ``T_j``; the first ``n - t``
   accepted parties are broadcast as the *accepted set* ``A_i``.
4. A process *supports* ``k`` once every member of ``A_k`` is accepted
   locally; at ``n - t`` supports it freezes its *eval set* (the union of
   the supported accepted-sets) and — once locally *released* — starts
   reconstructing the value of every accepted party.
5. The value of party ``j`` is ``v_j = (Σ_{d ∈ T_j} x_{d,j}) mod u``; the
   output bit is 0 iff some ``v_j = 0`` in the frozen eval set.

With ``u = n`` a counting argument over the support sets yields a core of
``>= t + 1`` parties contained in *every* nonfaulty eval set whose values
are fixed before any reconstruction begins, giving
``P[all output b] >= 1/4`` for each bit ``b`` — unless an SVSS invocation
misbehaved, in which case a fresh (nonfaulty, faulty) shun pair was
consumed (Definition 2's second disjunct).  DESIGN.md §4 records the
derivation; experiment E3 measures it.

*Release discipline.*  Reconstruction participation additionally waits for
a local :meth:`~CommonCoinModule.release` call, which the agreement layer
issues once the caller's round position is fixed — the value must not be
revealed while the adversary can still steer the caller, and all nonfaulty
processes are guaranteed to release every coin they join (§ agreement).

*Cost profile.*  One invocation runs ``n²`` SVSS sharings (each a fan-out
of MW-SVSS sub-sessions), whose echo/ack/confirm traffic crosses the same
(src, dst) pairs within the same protocol steps — on a coalescing runtime
(``Runtime(coalesce=True)``) that whole per-step bundle rides one envelope
per pair, collapsing the invocation's event bill by 20–60× at small ``n``
(``benchmarks/bench_coin.py``) with bit-identical outputs; the logical
message count, and hence the paper's complexity claims, are unchanged.
On a session-vector runtime (``Runtime(svec=True)``) the *logical* bill
collapses too: all ``n`` slots of one dealer batch march in lock-step, so
each party's per-step messages into them fold into one ``("svec", ...)``
slot-vector per (step, dealer-group) — ~n⁴ → ~n³ logical messages, with
coin outputs and per-session justifiers still bit-identical (the coin
registers each invocation's session family with the VSS layer's
:class:`~repro.core.vectormux.SessionVectorMux` at :meth:`join`, and
claims the svec broadcast topic in its ``_wire``).

The module also provides the pluggable stand-ins used by baselines and
scaling experiments: :class:`LocalCoin` (Ben-Or/Bracha style private
coins), :class:`IdealCoin` (a perfect or probabilistically-agreeing shared
coin driven by a global oracle), and the :class:`CoinSource` interface that
:mod:`repro.core.agreement` consumes.
"""

from __future__ import annotations

from collections.abc import Callable
from random import Random

from repro.broadcast.manager import BroadcastManager
from repro.core.manager import VSSManager
from repro.core.sessions import svss_session
from repro.core.vectormux import SVEC_TAG
from repro.errors import ProtocolError
from repro.sim.module import ProtocolModule
from repro.sim.process import ProcessHost

#: sentinel for "component reconstructed to ⊥, value cannot be zero"
_NONZERO = -1

CoinCallback = Callable[[int], None]


class CoinSource:
    """Interface the agreement protocol drives.

    ``join`` starts the (interactive) share stage, ``release`` unblocks the
    reveal stage, ``get`` registers for the value.  Non-interactive coins
    implement ``get`` synchronously and ignore the rest.
    """

    def join(self, csid: tuple) -> None:  # pragma: no cover - interface
        pass

    def release(self, csid: tuple) -> None:  # pragma: no cover - interface
        pass

    def retire(self, height: int | None = None) -> None:  # pragma: no cover
        """The caller will join no further sessions (it halted after round
        ``height``).  Shared coin front-ends use this to stop waiting on
        finished instances; plain coins ignore it."""

    def get(self, csid: tuple, callback: CoinCallback) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class LocalCoin(CoinSource):
    """A private random bit per invocation — Ben-Or's and Bracha's coin.

    Correct but exponentially slow: ``n`` processes agree by luck only.
    """

    def __init__(self, rng: Random):
        self._rng = rng
        self._values: dict[tuple, int] = {}

    def get(self, csid: tuple, callback: CoinCallback) -> None:
        value = self._values.setdefault(csid, self._rng.randrange(2))
        callback(value)


class IdealCoinOracle:
    """Global state behind :class:`IdealCoin` instances.

    With probability ``agreement`` an invocation is *good*: every process
    receives the same uniform bit.  Otherwise the invocation fails in the
    worst way the SCC definition allows: per-process adversarial bits.
    Calibrate ``agreement`` with the rates measured from the real SCC
    (experiment E3) to emulate the full stack at large ``n``.
    """

    def __init__(self, rng: Random, agreement: float = 1.0):
        if not 0.0 <= agreement <= 1.0:
            raise ProtocolError(f"agreement must be a probability, got {agreement}")
        self._rng = rng
        self.agreement = agreement
        self._sessions: dict[tuple, tuple[bool, int]] = {}
        self.invocations = 0
        self.failed_invocations = 0

    def value_for(self, csid: tuple, pid: int) -> int:
        state = self._sessions.get(csid)
        if state is None:
            good = self._rng.random() < self.agreement
            state = (good, self._rng.randrange(2))
            self._sessions[csid] = state
            self.invocations += 1
            if not good:
                self.failed_invocations += 1
        good, value = state
        if good:
            return value
        # Failed invocation: split the processes between the two values.
        return (value + pid) % 2


class IdealCoin(CoinSource):
    """Per-process front-end of an :class:`IdealCoinOracle`."""

    def __init__(self, oracle: IdealCoinOracle, pid: int):
        self._oracle = oracle
        self._pid = pid

    def get(self, csid: tuple, callback: CoinCallback) -> None:
        callback(self._oracle.value_for(csid, self._pid))

    def describe(self) -> str:
        return f"IdealCoin(agreement={self._oracle.agreement})"


class _CoinSession:
    """One process' state for one SCC invocation."""

    __slots__ = (
        "module",
        "csid",
        "u",
        "completed",
        "batch_done",
        "attach_frozen",
        "t_hat",
        "accepted",
        "accepted_frozen",
        "acc_sets",
        "supported",
        "eval_set",
        "released",
        "recon_begun",
        "values",
        "party_values",
        "output",
        "callbacks",
    )

    def __init__(self, module: "CommonCoinModule", csid: tuple):
        self.module = module
        self.csid = csid
        self.u = max(2, module.n)
        self.completed: set[tuple[int, int]] = set()  # (dealer, slot)
        self.batch_done: set[int] = set()
        self.attach_frozen = False
        self.t_hat: dict[int, tuple[int, ...]] = {}
        self.accepted: set[int] = set()
        self.accepted_frozen = False
        self.acc_sets: dict[int, frozenset[int]] = {}
        self.supported: set[int] = set()
        self.eval_set: frozenset[int] | None = None
        self.released = False
        self.recon_begun: set[int] = set()
        self.values: dict[tuple[int, int], object] = {}  # (dealer, slot) -> out
        self.party_values: dict[int, int] = {}  # slot j -> v_j (or _NONZERO)
        self.output: int | None = None
        self.callbacks: list[CoinCallback] = []


class _SlotWatcher:
    """Routes SVSS events of one (coin session, slot) tag to the session."""

    __slots__ = ("session", "slot")

    def __init__(self, session: _CoinSession, slot: int):
        self.session = session
        self.slot = slot

    def on_svss_share_complete(self, sid: tuple) -> None:
        self.session.module._on_share_complete(self.session, sid[2], self.slot)

    def on_svss_output(self, sid: tuple, value: object) -> None:
        self.session.module._on_svss_output(self.session, sid[2], self.slot, value)

    # MW events of children are handled inside the SVSS layer.
    def on_mw_share_complete(self, sid: tuple) -> None:  # pragma: no cover
        pass

    def on_mw_output(self, sid: tuple, value: object) -> None:  # pragma: no cover
        pass


class CommonCoinModule(ProtocolModule, CoinSource):
    """The shunning common coin of one process."""

    MODULE_KIND = "coin"

    def __init__(self, host: ProcessHost, vss: VSSManager, broadcast: BroadcastManager):
        super().__init__()
        self.vss = vss
        self._broadcast = broadcast
        self.sessions: dict[tuple, _CoinSession] = {}
        self.attach(host)

    def _wire(self, host: ProcessHost) -> None:
        self.pid = host.pid
        self.config = host.runtime.config
        self.n = self.config.n
        self.t = self.config.t
        self.subscribe(self._broadcast, "coin", self._on_rb)
        # Session-vector wiring: slot families only exist for coin sessions,
        # so the coin claims the "svec" broadcast topic (the matching host
        # tag is reserved by every VSSManager at its own _wire).  Vectors
        # are unpacked by the VSS layer's mux regardless of whether this
        # runtime packs (a forged vector must route identically either way).
        self.subscribe(self._broadcast, SVEC_TAG, self.vss.mux.on_rb)

    # ------------------------------------------------------------------
    # CoinSource interface
    # ------------------------------------------------------------------
    def join(self, csid: tuple) -> None:
        """Enter the coin: deal our n secrets and start participating."""
        if csid in self.sessions:
            return
        session = _CoinSession(self, csid)
        self.sessions[csid] = session
        if self.host.runtime.svec:
            # Our n (dealer, slot) sessions — and every per-slot reply we
            # send into peers' sessions of this invocation — may travel as
            # slot-vectors from here on.
            self.vss.mux.register_family(csid)
        for slot in range(1, self.n + 1):
            self.vss.register_watcher((csid, slot), _SlotWatcher(session, slot))
        rng = self.config.derive_rng("coin-secrets", csid, self.pid)
        deviation = self.host.deviation("coin_secret")
        for slot in range(1, self.n + 1):
            secret = rng.randrange(session.u)
            if deviation is not None:
                secret = deviation(csid, slot, secret, session.u) % session.u
            self.vss.svss_share(svss_session((csid, slot), self.pid), secret)
        trace = self.host.runtime.trace
        if trace.records_events:
            trace.record_event("coin.join")

    def release(self, csid: tuple) -> None:
        """Unblock the reveal stage (caller's round position is fixed)."""
        session = self._session(csid)
        if session.released:
            return
        session.released = True
        self._maybe_start_reconstruction(session)

    def get(self, csid: tuple, callback: CoinCallback) -> None:
        session = self._session(csid)
        if session.output is not None:
            callback(session.output)
        else:
            session.callbacks.append(callback)

    def _session(self, csid: tuple) -> _CoinSession:
        session = self.sessions.get(csid)
        if session is None:
            self.join(csid)
            session = self.sessions[csid]
        return session

    # ------------------------------------------------------------------
    # share-stage progress
    # ------------------------------------------------------------------
    def _on_share_complete(self, session: _CoinSession, dealer: int, slot: int) -> None:
        session.completed.add((dealer, slot))
        if all((dealer, s) in session.completed for s in range(1, self.n + 1)):
            session.batch_done.add(dealer)
            if (
                not session.attach_frozen
                and len(session.batch_done) >= self.n - self.t
            ):
                session.attach_frozen = True
                attach = tuple(sorted(session.batch_done))
                self._rb(session, "att", attach)
        self._recheck_accepts(session)

    def _on_rb(self, origin: int, value: tuple) -> None:
        if len(value) != 4:
            return
        _, csid, kind, body = value
        if not isinstance(csid, tuple):
            return
        session = self.sessions.get(csid)
        if session is None:
            # A peer reached this coin before we did (it is ahead in the
            # agreement loop); join so the session can make progress.
            if not isinstance(kind, str):
                return
            self.join(csid)
            session = self.sessions[csid]
        if kind == "att":
            self._on_attach(session, origin, body)
        elif kind == "acc":
            self._on_accepted_set(session, origin, body)

    def _on_attach(self, session: _CoinSession, origin: int, body: object) -> None:
        if origin in session.t_hat or not self._valid_pid_tuple(body):
            return
        if len(body) < self.n - self.t:
            return
        session.t_hat[origin] = tuple(body)
        self._recheck_accepts(session)

    def _on_accepted_set(self, session: _CoinSession, origin: int, body: object) -> None:
        if origin in session.acc_sets or not self._valid_pid_tuple(body):
            return
        if len(body) < self.n - self.t:
            return
        session.acc_sets[origin] = frozenset(body)
        self._recheck_supports(session)

    def _recheck_accepts(self, session: _CoinSession) -> None:
        for j, attach in list(session.t_hat.items()):
            if j in session.accepted:
                continue
            if all((d, j) in session.completed for d in attach):
                session.accepted.add(j)
                if session.eval_set is not None and session.released:
                    self._start_reconstruction_for(session, j)
        if (
            not session.accepted_frozen
            and len(session.accepted) >= self.n - self.t
        ):
            session.accepted_frozen = True
            self._rb(session, "acc", tuple(sorted(session.accepted)))
        self._recheck_supports(session)

    def _recheck_supports(self, session: _CoinSession) -> None:
        for k, members in session.acc_sets.items():
            if k not in session.supported and members <= session.accepted:
                session.supported.add(k)
        if session.eval_set is None and len(session.supported) >= self.n - self.t:
            union: set[int] = set()
            for k in session.supported:
                union |= session.acc_sets[k]
            session.eval_set = frozenset(union)
            self._maybe_start_reconstruction(session)

    # ------------------------------------------------------------------
    # reveal stage
    # ------------------------------------------------------------------
    def _maybe_start_reconstruction(self, session: _CoinSession) -> None:
        if not session.released or session.eval_set is None:
            return
        for j in sorted(session.accepted):
            self._start_reconstruction_for(session, j)

    def _start_reconstruction_for(self, session: _CoinSession, j: int) -> None:
        if j in session.recon_begun:
            return
        session.recon_begun.add(j)
        for dealer in session.t_hat[j]:
            self.vss.svss_begin_reconstruct(svss_session((session.csid, j), dealer))

    def _on_svss_output(
        self, session: _CoinSession, dealer: int, slot: int, value: object
    ) -> None:
        session.values[(dealer, slot)] = value
        attach = session.t_hat.get(slot)
        if attach is None or slot in session.party_values:
            return
        total = 0
        for d in attach:
            out = session.values.get((d, slot))
            if out is None:
                return  # still waiting
            if not isinstance(out, int):
                total = _NONZERO  # a ⊥ component: value cannot be zero
                break
            total += out
        session.party_values[slot] = (
            _NONZERO if total == _NONZERO else total % session.u
        )
        self._maybe_output(session)

    def _maybe_output(self, session: _CoinSession) -> None:
        if session.output is not None or session.eval_set is None:
            return
        if any(j not in session.party_values for j in session.eval_set):
            return
        zero_seen = any(
            session.party_values[j] == 0 for j in session.eval_set
        )
        session.output = 0 if zero_seen else 1
        self.host.runtime.notify_state_change()  # coin value is observable
        monitor = self.host.runtime.monitor
        if monitor is not None:
            monitor.on_coin_output(session.csid, self.pid, session.output)
        trace = self.host.runtime.trace
        if trace.records_events:
            # Guarded so no-trace benchmark runs skip the f-string build too.
            trace.record_event(f"coin.output.{session.output}")
        callbacks = session.callbacks
        session.callbacks = []
        for callback in callbacks:
            callback(session.output)

    # ------------------------------------------------------------------
    def _rb(self, session: _CoinSession, kind: str, body: object) -> None:
        bid = (self.pid, "coin", session.csid, kind)
        self._broadcast.broadcast(bid, ("coin", session.csid, kind, body))

    def _valid_pid_tuple(self, body: object) -> bool:
        return (
            isinstance(body, tuple)
            and len(set(body)) == len(body)
            and all(isinstance(p, int) and 1 <= p <= self.n for p in body)
        )

    def describe(self) -> str:
        return "SVSSCommonCoin"


class _GateRound:
    """Release bookkeeping for one shared coin round at one process."""

    __slots__ = ("joined", "released", "under_released")

    def __init__(self) -> None:
        self.joined = 0
        self.released = 0
        self.under_released = False


class SharedCoinGate(CoinSource):
    """Share one underlying coin invocation per round across a batch.

    This is the batching lever of Wang-style amortized BA: ``K`` concurrent
    agreement instances at the same process consult *one* coin session per
    round (``("cc", shared_tag, r)``) instead of ``K`` — with the paper's
    SVSS coin, whose single invocation costs ``Θ(n²)`` sharings, that
    amortizes essentially the whole coin bill across the batch.

    The gate preserves the release discipline *collectively*: the
    underlying :meth:`CoinSource.release` fires only once every instance of
    this process has either released round ``r`` or retired (halted) below
    it — the coin for round ``r`` is not revealed while any local
    instance's round-``r`` position is still steerable.  An instance that
    joins a round *after* the collective release (a straggler whose peers
    all finished the round first) sees the coin like any late joiner of a
    released session; this is the documented weakening shared rounds buy
    their amortization with.

    Liveness is preserved: every nonfaulty agreement instance releases
    every round it joins before halting (release precedes both the coin
    wait and the halt check), so the gate's collective condition is always
    eventually met.
    """

    def __init__(self, source: CoinSource, instances: int, shared_tag: object = "aba"):
        if instances < 1:
            raise ProtocolError(f"need at least one instance, got {instances}")
        self._source = source
        self._instances = instances
        self._shared_tag = shared_tag
        self._rounds: dict[object, _GateRound] = {}
        #: Highest joined round of each retired instance (an instance only
        #: counts as a permanent non-joiner for rounds *above* its height).
        self._retired_heights: list[int] = []

    def _shared(self, csid: tuple) -> tuple:
        return ("cc", self._shared_tag, csid[2])

    def _round(self, r: object) -> _GateRound:
        state = self._rounds.get(r)
        if state is None:
            state = self._rounds[r] = _GateRound()
        return state
    # ``r`` comes from the instance's csid (``("cc", instance_id, r)``);
    # agreement rounds are ints, so gate rounds order totally.

    def join(self, csid: tuple) -> None:
        r = csid[2]
        state = self._round(r)
        state.joined += 1
        self._source.join(self._shared(csid))

    def release(self, csid: tuple) -> None:
        r = csid[2]
        state = self._round(r)
        state.released += 1
        self._maybe_release(r, state)

    def retire(self, height: int | None = None) -> None:
        """One instance halted after releasing every round it joined.

        ``height`` is its highest joined round (0 if it never joined); the
        instance counts as a permanent non-joiner only for rounds above it.
        """
        self._retired_heights.append(0 if height is None else height)
        for r, state in list(self._rounds.items()):
            self._maybe_release(r, state)

    def get(self, csid: tuple, callback: CoinCallback) -> None:
        self._source.get(self._shared(csid), callback)

    def _maybe_release(self, r: object, state: _GateRound) -> None:
        if state.under_released or state.released < state.joined:
            return
        absent = sum(1 for h in self._retired_heights if h < r)
        if state.released + absent >= self._instances:
            state.under_released = True
            self._source.release(("cc", self._shared_tag, r))

    def describe(self) -> str:
        return f"shared[{self._instances}]({self._source.describe()})"
