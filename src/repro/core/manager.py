"""VSS manager: per-process session routing with DMM filtering.

The manager owns a process' DMM, session clock, and every MW-SVSS/SVSS
instance; it sits between the network/broadcast layer and the session logic
exactly where §3.1 places the DMM ("before a process sees a message in the
MW-SVSS protocol ... the message is filtered").  Messages the DMM delays
are parked and re-examined whenever expectations are cleared; messages from
convicted processes are discarded.

Completion and output events are routed to *watchers* keyed by the session
parent, which is how SVSS instances hear about their MW-SVSS children and
how the common coin hears about its SVSS sharings.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.broadcast.manager import BroadcastManager
from repro.core.dmm import DELAY, DISCARD, DMM, FORWARD
from repro.core.mwsvss import GroupLane, MWSVSSInstance
from repro.core.sessions import SVEC_MW, SessionClock, is_mw, is_svss, svec_sid
from repro.core.svss import SVSSInstance
from repro.core.vectormux import SVEC_TAG, SessionVectorMux
from repro.errors import ProtocolError
from repro.sim.module import ProtocolModule
from repro.sim.process import ProcessHost

#: Message kinds carrying protocol *values* — the only ones the DMM
#: delay/discard applies to.  Membership bookkeeping (acks, L/M/G sets, the
#: dealer's OK) flows even from suspected processes: the §2 property proofs
#: only ever require a shunned process' value contributions to be ignored,
#: and filtering membership messages would let a faulty process that
#: withholds one reconstruct broadcast permanently stall every later
#: honest-dealer session it is admitted to (see DESIGN.md).
VALUE_KINDS = frozenset({"shl", "mon", "mod", "cnf", "ms", "rv", "rows"})

#: Transport enforcement: kinds whose consistency guarantees come from
#: reliable broadcast must never be accepted over a private channel (a
#: faulty dealer could otherwise equivocate, e.g. send different G sets to
#: different processes), and vice versa.
PRIVATE_KINDS = frozenset({"shl", "mon", "mod", "cnf", "ms", "rows"})
RB_KINDS = frozenset({"ack", "L", "M", "ok", "rv", "G"})


class CallbackWatcher:
    """Adapter turning plain callables into a watcher object (for tests and
    the solo-session API)."""

    def __init__(
        self,
        on_mw_share_complete: Callable[[tuple], None] | None = None,
        on_mw_output: Callable[[tuple, object], None] | None = None,
        on_svss_share_complete: Callable[[tuple], None] | None = None,
        on_svss_output: Callable[[tuple, object], None] | None = None,
    ):
        self._mw_complete = on_mw_share_complete
        self._mw_output = on_mw_output
        self._svss_complete = on_svss_share_complete
        self._svss_output = on_svss_output

    def on_mw_share_complete(self, sid: tuple) -> None:
        if self._mw_complete is not None:
            self._mw_complete(sid)

    def on_mw_output(self, sid: tuple, value: object) -> None:
        if self._mw_output is not None:
            self._mw_output(sid, value)

    def on_svss_share_complete(self, sid: tuple) -> None:
        if self._svss_complete is not None:
            self._svss_complete(sid)

    def on_svss_output(self, sid: tuple, value: object) -> None:
        if self._svss_output is not None:
            self._svss_output(sid, value)


class VSSManager(ProtocolModule):
    """All VSS state of one process."""

    MODULE_KIND = "vss"

    #: Transport constraints, exposed for the session-vector mux (the whole
    #: vector must obey the same private/RB split as per-session messages).
    PRIVATE_KINDS = PRIVATE_KINDS
    RB_KINDS = RB_KINDS

    def __init__(self, host: ProcessHost, broadcast: BroadcastManager):
        super().__init__()
        self._broadcast = broadcast
        self.mw: dict[tuple, MWSVSSInstance] = {}
        self.svss: dict[tuple, SVSSInstance] = {}
        self._watchers: dict[object, object] = {}
        # Parked (delayed) messages indexed by (src, sid) — one verdict per
        # key re-examines a whole backlog entry — with a global sequence so
        # releases replay in park order.
        self._delayed: dict[tuple[int, tuple], list[tuple[int, str, object]]] = {}
        self._delayed_seq = 0
        # Structure-of-arrays lanes: one per svec dealer-group, arraying the
        # n sibling session instances by slot (see GroupLane).
        self._lanes: dict[tuple, GroupLane] = {}
        # Manager-wide memo for pid-tuple validation (L/M/G sets): the
        # same tuples recur across sibling sessions and senders; values
        # are the validated frozenset, or None for invalid bodies.
        self._pid_tuple_ok: dict[tuple, frozenset | None] = {}
        self.attach(host)

    def _wire(self, host: ProcessHost) -> None:
        self._runtime = host.runtime
        self.config = host.runtime.config
        self.pid = host.pid
        self.n = self.config.n
        self.t = self.config.t
        self.field = self.config.field
        self.clock = SessionClock()
        self.dmm = DMM(self.pid, self.clock, on_shun=self._record_shun)
        self.register("v", self._on_private)
        # The "svec" host tag is reserved here unconditionally (like the
        # runtime's "env" tag) so no other module can ever claim it; the
        # matching broadcast topic is claimed by the common coin's _wire,
        # since slot-vector families only exist for coin sessions.
        self.mux = SessionVectorMux(self)
        self.register(SVEC_TAG, self.mux.on_private)
        self.subscribe(self._broadcast, "vss", self._on_rb)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def register_watcher(self, key: object, watcher: object) -> None:
        if key in self._watchers:
            raise ProtocolError(f"watcher for {key!r} already registered")
        self._watchers[key] = watcher

    def mw_share(self, sid: tuple, secret: int) -> None:
        self._ensure_mw(sid).share(secret)

    def mw_moderate(self, sid: tuple, expected: int) -> None:
        self._ensure_mw(sid).moderate(expected)

    def mw_begin_reconstruct(self, sid: tuple) -> None:
        self._ensure_mw(sid).begin_reconstruct()

    def svss_share(self, sid: tuple, secret: int) -> None:
        self._ensure_svss(sid).share(secret)

    def svss_begin_reconstruct(self, sid: tuple) -> None:
        self._ensure_svss(sid).begin_reconstruct()

    def send_value(self, dst: int, sid: tuple, kind: str, body: object) -> None:
        """Send one private per-session message (the instances' send seam).

        On a session-vector runtime, per-slot coin sessions hand their
        message to the mux instead, which folds the step's sibling slots
        into one ``("svec", ...)`` send at end-of-step; everything else —
        and every corrupt sender — travels as a plain per-session message.
        """
        if not self.mux.offer_private(dst, sid, kind, body):
            self.host.send(dst, ("v", sid, kind, body), "vss")

    def rb_broadcast(self, sid: tuple, kind: str, body: object) -> None:
        """RB-broadcast a VSS message of this session (canonical bid).

        Slot-vector aggregation applies exactly as in :meth:`send_value`;
        folding ``n`` sibling broadcasts into one saves the whole O(n²)
        echo cascade each of them would have cost.
        """
        if self.mux.offer_rb(sid, kind, body):
            return
        bid = (self.pid, "vss", sid, kind)
        self._broadcast.broadcast(bid, ("vss", sid, kind, body))

    # ------------------------------------------------------------------
    # instance management
    # ------------------------------------------------------------------
    def _ensure_mw(self, sid: tuple) -> MWSVSSInstance:
        inst = self.mw.get(sid)
        if inst is None:
            if not self._valid_mw_sid(sid):
                raise ProtocolError(f"invalid MW-SVSS session id {sid!r}")
            inst = MWSVSSInstance(self, sid)
            self.mw[sid] = inst
            self.clock.note_begin(sid)
        return inst

    def _ensure_svss(self, sid: tuple) -> SVSSInstance:
        inst = self.svss.get(sid)
        if inst is None:
            if not self._valid_svss_sid(sid):
                raise ProtocolError(f"invalid SVSS session id {sid!r}")
            inst = SVSSInstance(self, sid)
            self.svss[sid] = inst
            self.clock.note_begin(sid)
        return inst

    def _valid_mw_sid(self, sid: tuple) -> bool:
        return (
            is_mw(sid)
            and isinstance(sid[2], int)
            and isinstance(sid[3], int)
            and 1 <= sid[2] <= self.n
            and 1 <= sid[3] <= self.n
            and sid[4] in ("md", "dm")
        )

    def _valid_svss_sid(self, sid: tuple) -> bool:
        return is_svss(sid) and isinstance(sid[2], int) and 1 <= sid[2] <= self.n

    # ------------------------------------------------------------------
    # message ingestion (network -> DMM -> session logic)
    # ------------------------------------------------------------------
    def _on_private(self, src: int, payload: tuple) -> None:
        if len(payload) != 4 or payload[2] not in PRIVATE_KINDS:
            return
        self._ingest(src, payload[1], payload[2], payload[3])

    def _on_rb(self, origin: int, value: tuple) -> None:
        if len(value) != 4 or value[2] not in RB_KINDS:
            return
        self._ingest(origin, value[1], value[2], value[3])

    def _ingest(self, src: int, sid: object, kind: object, body: object) -> None:
        if not isinstance(kind, str):
            return
        if is_mw(sid):
            if not self._valid_mw_sid(sid):
                return
        elif is_svss(sid):
            if not self._valid_svss_sid(sid):
                return
        else:
            return
        # Creating the instance stamps the session's local begin, which is
        # what makes →_i well-defined for the filter below.
        self._ensure(sid)
        if kind in VALUE_KINDS:
            self._runtime.dmm_verdict_calls += 1
            verdict = self.dmm.filter_verdict(src, sid)
            if verdict == DISCARD:
                return
            if verdict == DELAY:
                self._park(src, sid, kind, body)
                return
        self._dispatch(src, sid, kind, body)
        if self._delayed or self.dmm.dirty:
            self._release_delayed()

    def ingest_vector(self, src: int, group: tuple, kind: str, entries: tuple) -> None:
        """Consume one slot-vector through the batched ingestion path.

        Equivalent, slot for slot, to feeding each ``(slot, body)`` entry
        through :meth:`_ingest`, but the per-slot chain is hoisted to the
        vector level wherever the answer cannot differ across sibling
        sessions:

        * **session validation** — every slot's sid shares the group's
          dealer/moderator fields (the slot lands only inside the parent
          tag, which per-slot validation never inspects), so one probe
          covers the vector;
        * **DMM verdict** — computed once per (src, group) via
          :meth:`DMM.filter_verdict_group` and reused while the DMM's
          ``version`` is unchanged; a dispatch that convicts/arms/disarms
          mid-vector bumps it and the remaining slots fall back to
          per-slot verdicts;
        * **instance lookup** — the group's :class:`GroupLane` columns
          give O(1) slot access without rebuilding per-slot sid tuples;
        * **value decoding** — ``mon``/``mod``/``rows`` bodies are batch
          interpolated through the lane's row fast path (bit-identical to
          the per-slot interpolation; see GroupLane).

        Per-slot degradation is preserved: malformed entries, delayed and
        discarded slots, and crash/recovery mid-vector affect only the
        slots the per-slot path would have affected, in the same order.
        """
        mw_group = group[0] == SVEC_MW
        probe = svec_sid(group, 0)
        if mw_group:
            if not self._valid_mw_sid(probe):
                return
        else:
            if not self._valid_svss_sid(probe):
                return
        items = [
            item
            for item in entries
            if type(item) is tuple and len(item) == 2 and type(item[0]) is int
        ]
        if not items:
            return
        host = self.host
        runtime = self._runtime
        dmm = self.dmm
        delayed = self._delayed
        lane = self._lanes.get(group)
        if lane is None:
            lane = self._lanes[group] = GroupLane(group)
        columns = lane.columns
        instances = self.mw if mw_group else self.svss
        checked = kind in VALUE_KINDS
        group_verdict: str | None = None
        version = -1
        if checked:
            runtime.dmm_verdict_calls += 1
            group_verdict = dmm.filter_verdict_group(
                src, group, [slot for slot, _ in items]
            )
            version = dmm.version
        polys = None
        if len(items) > 1 and group_verdict in (None, FORWARD):
            if mw_group:
                if kind == "mon" or kind == "mod":
                    polys = lane.monitor_polys(self, src, kind, items)
            elif kind == "rows":
                polys = lane.row_polys(self, src, items)
        batched = 0
        fallbacks = 0
        is_rv = mw_group and kind == "rv"
        epoch = host.crash_epoch
        for slot, body in items:
            if host.crashed or host.crash_epoch != epoch:
                break
            inst = columns.get(slot)
            if inst is None:
                sid = svec_sid(group, slot)
                inst = instances.get(sid)
                if inst is None:
                    inst = self._ensure_mw(sid) if mw_group else self._ensure_svss(sid)
                columns[slot] = inst
            if checked:
                if group_verdict is not None and dmm.version == version:
                    verdict = group_verdict
                    batched += 1
                else:
                    fallbacks += 1
                    verdict = dmm.filter_verdict(src, inst.sid)
                if verdict == DISCARD:
                    continue
                if verdict == DELAY:
                    self._park(src, inst.sid, kind, body)
                    continue
            if is_rv:
                batch = inst._parse_rv(body)
                if batch is not None:
                    dmm.check_reconstruct_batch(src, inst.sid, batch)
                    if src in dmm.D:
                        continue  # convicted by this very slot
                inst.handle(src, kind, body, batch)
            elif polys is None:
                inst.handle(src, kind, body)
            else:
                inst.handle(src, kind, body, polys.get(slot))
            if delayed or dmm.dirty:
                self._release_delayed()
        runtime.svec_batch_ingested += 1
        runtime.dmm_verdicts_batched += batched
        runtime.dmm_verdict_fallbacks += fallbacks
        runtime.dmm_verdict_calls += fallbacks

    def _ensure(self, sid: tuple) -> None:
        if is_mw(sid):
            self._ensure_mw(sid)
        else:
            self._ensure_svss(sid)

    def _dispatch(self, src: int, sid: tuple, kind: str, body: object) -> None:
        if is_mw(sid):
            inst = self._ensure_mw(sid)
            if kind == "rv":
                batch = inst._parse_rv(body)
                if batch is not None:
                    self.dmm.check_reconstruct_batch(src, sid, batch)
                    if src in self.dmm.D:
                        return  # convicted by this very message
                inst.handle(src, kind, body, batch)
                return
            inst.handle(src, kind, body)
        else:
            self._ensure_svss(sid).handle(src, kind, body)

    def _park(self, src: int, sid: tuple, kind: str, body: object) -> None:
        seq = self._delayed_seq
        self._delayed_seq = seq + 1
        self._delayed.setdefault((src, sid), []).append((seq, kind, body))

    def _release_delayed(self) -> None:
        """Re-examine parked messages whose sender's DMM state changed.

        A parked key's verdict can only move when the DMM's view of that
        *sender* moves (conviction, arming, disarming — ``begun[sid]`` is
        fixed the moment the message parks), so the DMM marks changed
        senders dirty and only the affected keys are re-filtered: one
        verdict per (src, sid) backlog entry instead of a full re-scan of
        the parked deque on every state change.  Released messages replay
        in park order across keys, and dispatching them may dirty further
        senders, so the scan loops until the dirty set drains.
        """
        delayed = self._delayed
        dmm = self.dmm
        dirty = dmm.dirty
        if not delayed:
            if dirty:
                dirty.clear()
            return
        runtime = self._runtime
        while dirty:
            affected = [key for key in delayed if key[0] in dirty]
            dirty.clear()
            if not affected:
                return
            release: list[tuple[int, int, tuple, str, object]] = []
            for key in affected:
                src, sid = key
                runtime.dmm_verdict_calls += 1
                verdict = dmm.filter_verdict(src, sid)
                if verdict == DELAY:
                    continue
                entries = delayed.pop(key)
                if verdict == DISCARD:
                    continue
                for seq, kind, body in entries:
                    release.append((seq, src, sid, kind, body))
            release.sort()
            for _, src, sid, kind, body in release:
                self._dispatch(src, sid, kind, body)
            if not delayed:
                dirty.clear()
                return

    # ------------------------------------------------------------------
    # event routing
    # ------------------------------------------------------------------
    def notify_mw_share_complete(self, sid: tuple) -> None:
        self._runtime.notify_state_change()
        parent = sid[1]
        if is_svss(parent):
            self._ensure_svss(parent).on_mw_share_complete(sid)
        watcher = self._watchers.get(parent)
        if watcher is not None:
            watcher.on_mw_share_complete(sid)

    def notify_mw_output(self, sid: tuple, value: object) -> None:
        self._runtime.notify_state_change()
        self.clock.note_complete(sid)
        self.dmm.on_session_reconstructed(sid)
        parent = sid[1]
        if is_svss(parent):
            self._ensure_svss(parent).on_mw_output(sid, value)
        watcher = self._watchers.get(parent)
        if watcher is not None:
            watcher.on_mw_output(sid, value)
        self._release_delayed()

    def notify_svss_share_complete(self, sid: tuple) -> None:
        self._runtime.notify_state_change()
        watcher = self._watchers.get(sid[1])
        if watcher is not None:
            watcher.on_svss_share_complete(sid)

    def notify_svss_output(self, sid: tuple, value: object) -> None:
        self._runtime.notify_state_change()
        self.clock.note_complete(sid)
        watcher = self._watchers.get(sid[1])
        if watcher is not None:
            watcher.on_svss_output(sid, value)

    def _record_shun(self, culprit: int, session: tuple) -> None:
        runtime = self.host.runtime
        runtime.trace.record_shun(self.pid, culprit, session, runtime.now)
        monitor = runtime.monitor
        if monitor is not None:
            monitor.on_shun(self.pid, culprit, session)
