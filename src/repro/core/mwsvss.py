"""MW-SVSS — moderated weak shunning verifiable secret sharing (paper §3.2).

One :class:`MWSVSSInstance` is one process' view of one MW-SVSS session
``(c, dealer)`` with a designated moderator.  The share protocol ``S'`` and
reconstruct protocol ``R'`` follow the paper step by step; comments carry
the paper's step numbers.

Wire messages (``sid`` is the session id):

private (``("v", sid, kind, body)``):

* ``"shl"`` dealer → j: the share vector ``(f_1(j), ..., f_n(j))``.
* ``"mon"`` dealer → l: the monitor polynomial ``f_l`` as values
  ``f_l(1..t+1)``.
* ``"mod"`` dealer → moderator: ``f`` as values ``f(1..t+1)``.
* ``"cnf"`` j → l: confirmation value ``f̂^j_l`` (j's share of ``f_l``).
* ``"ms"``  j → moderator: ``f̂_j(0)`` (j's monitored point of ``f``).

reliable broadcast (``("vss", sid, kind, body)``):

* ``"ack"`` — step 2 public acknowledgement.
* ``"L"``   — step 4, the frozen confirmer set ``L_j``.
* ``"M"``   — step 6, the moderator's frozen monitor set ``M``.
* ``"ok"``  — step 7, the dealer's go-ahead.
* ``"rv"``  — reconstruct step 1, batched values ``((monitor, value), ...)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.sessions import mw_dealer, mw_moderator
from repro.errors import ProtocolError
from repro.poly.fastpath import (
    evaluate_rows,
    interpolate_values,
    interpolate_values_rows,
    lagrange_basis,
)
from repro.poly.univariate import Polynomial, interpolate_degree_t

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import VSSManager


class _Bottom:
    """The default value ⊥ of weak binding (paper §2.2)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


BOTTOM = _Bottom()

#: Cache-miss sentinel for the manager-wide pid-tuple memo.
_MISSING = object()


class MWSVSSInstance:
    """One process' state machine for one MW-SVSS session."""

    def __init__(self, manager: "VSSManager", sid: tuple):
        self.manager = manager
        self.sid = sid
        self.pid = manager.pid
        self.n = manager.n
        self.t = manager.t
        self.field = manager.field
        self.dealer = mw_dealer(sid)
        self.moderator = mw_moderator(sid)

        # step 1-2 inputs
        self.share_vector: tuple[int, ...] | None = None  # (f̂^j_1 .. f̂^j_n)
        self.monitor_poly: Polynomial | None = None  # f̂_j
        self._step2_done = False

        # step 3-4 (monitor bookkeeping)
        self.confirm_values: dict[int, int] = {}  # l -> f̂^l_j (first wins)
        self.acks: set[int] = set()  # processes whose ack RB-delivered
        self.L: set[int] = set()
        self.L_frozen = False
        # step 8 applies from the moment M̂ excludes us: no further DEAL
        # expectations may be recorded for this session (a late confirmer's
        # expectation could never be discharged — see Lemma 1(b)).
        self._deal_suppressed = False

        # moderator state
        self.moderator_poly: Polynomial | None = None  # f̂ from the dealer
        self.moderator_expected: int | None = None  # s' (set via moderate())
        self.moderator_shares: dict[int, int] = {}  # j -> f̂^j_0
        self.M: set[int] = set()
        self.M_frozen = False

        # broadcast sets received
        self.L_hat: dict[int, frozenset[int]] = {}
        self.M_hat: frozenset[int] | None = None
        self.ok_received = False

        # dealer state
        self._deal_polys: list[Polynomial] | None = None  # [f, f_1, ..., f_n]
        self._dealer_acked = False  # step 7 done

        self.share_completed = False

        # reconstruct state
        self.reconstruct_begun = False
        self._rv_sent = False
        self.rv_batches: dict[int, dict[int, int]] = {}  # sender -> batch
        #: Senders whose batches may hold newly consumable points — fresh
        #: arrivals, or every sender after an ``L̂``/``M̂`` change widens
        #: eligibility.  ``_consume_rv_batches`` only re-scans these.
        self._rv_dirty: set[int] = set()
        self.K: dict[int, list[tuple[int, int]]] = {}  # monitor l -> points
        self.f_bar: dict[int, int] = {}  # monitor l -> f̄_l(0) (free term)
        self.output: int | _Bottom | None = None

    # ------------------------------------------------------------------
    # local API
    # ------------------------------------------------------------------
    def share(self, secret: int) -> None:
        """Dealer step 1: draw the polynomials and distribute the shares."""
        if self.pid != self.dealer:
            raise ProtocolError(f"{self.pid} is not the dealer of {self.sid}")
        if self._deal_polys is not None:
            raise ProtocolError(f"share already initiated for {self.sid}")
        field = self.field
        rng = self.manager.config.derive_rng("mw-deal", self.sid)
        f = Polynomial.random(field, self.t, rng, constant_term=secret)
        sub = [
            Polynomial.random(field, self.t, rng, constant_term=f(l))
            for l in range(1, self.n + 1)
        ]
        self._deal_polys = [f] + sub

        mgr = self.manager
        corrupt_values = mgr.host.deviation("corrupt_mw_share_values")
        eval_points = list(range(1, self.t + 2))
        pids = list(range(1, self.n + 1))
        # One batched multi-point pass over all n sub-polynomials (shared
        # power tables, one deferred reduction per cell);
        # rows[l-1][j-1] == f_l(j).
        rows = evaluate_rows(field, [p.coeffs for p in sub], pids)
        for j in pids:
            values = [rows[l - 1][j - 1] for l in pids]
            if corrupt_values is not None:
                values = corrupt_values(self.sid, j, values, field.prime)
            mgr.send_value(j, self.sid, "shl", tuple(values))
        for l in pids:
            mon = tuple(rows[l - 1][: self.t + 1])
            mgr.send_value(l, self.sid, "mon", mon)
        mgr.send_value(
            self.moderator, self.sid, "mod", tuple(f.evaluate_many(eval_points))
        )

    def moderate(self, expected: int) -> None:
        """Install the moderator's input value ``s'`` (enables step 5)."""
        if self.pid != self.moderator:
            raise ProtocolError(f"{self.pid} is not the moderator of {self.sid}")
        if self.moderator_expected is not None:
            return
        self.moderator_expected = expected % self.field.prime
        self._recheck_moderator()

    def begin_reconstruct(self) -> None:
        """Start protocol R' (requires a locally completed share)."""
        if not self.share_completed:
            raise ProtocolError(f"share of {self.sid} not complete at {self.pid}")
        if self.reconstruct_begun:
            return
        self.reconstruct_begun = True
        self._send_reconstruct_values()
        if self._rv_dirty and self.M_hat is not None:
            self._consume_rv_batches()
        self._maybe_output()

    # ------------------------------------------------------------------
    # message handling (post-DMM)
    # ------------------------------------------------------------------
    def handle(self, src: int, kind: str, body: object, poly: object = None) -> None:
        # ``poly`` is an optional pre-decoded form of the body supplied by
        # the batched ingestion path: a pre-interpolated polynomial for
        # ``mon``/``mod`` (GroupLane batch decode), the pre-parsed batch
        # dict for ``rv``.  Handlers fall back to per-message decoding
        # when it is absent.
        # Ordered by per-invocation frequency: the O(n)-per-party kinds
        # (confirm/ack/L-set/reconstruct) before the once-per-session ones.
        if kind == "cnf":
            self._on_confirm(src, body)
        elif kind == "ack":
            self._on_ack(src)
        elif kind == "L":
            self._on_l_set(src, body)
        elif kind == "rv":
            self._on_reconstruct_values(src, body, poly)
        elif kind == "ms":
            self._on_moderator_share(src, body)
        elif kind == "shl":
            self._on_share_vector(src, body)
        elif kind == "mon":
            self._on_monitor_poly(src, body, poly)
        elif kind == "mod":
            self._on_moderator_poly(src, body, poly)
        elif kind == "M":
            self._on_m_set(src, body)
        elif kind == "ok":
            self._on_ok(src)

    # -- share phase -----------------------------------------------------
    def _on_share_vector(self, src: int, body: object) -> None:
        if src != self.dealer or self.share_vector is not None:
            return
        if not self._is_value_tuple(body, self.n):
            return
        self.share_vector = tuple(body)
        self._maybe_step2()

    def _on_monitor_poly(self, src: int, body: object, poly: object = None) -> None:
        if src != self.dealer or self.monitor_poly is not None:
            return
        if not self._is_value_tuple(body, self.t + 1):
            return
        self.monitor_poly = (
            poly
            if poly is not None
            else interpolate_values(self.field, range(1, self.t + 2), body)
        )
        self._maybe_step2()
        for l in list(self.confirm_values):
            self._maybe_step3(l)

    def _maybe_step2(self) -> None:
        """Step 2: confirm privately to every monitor and ack publicly."""
        if self._step2_done or self.share_vector is None or self.monitor_poly is None:
            return
        self._step2_done = True
        mgr = self.manager
        corrupt = mgr.host.deviation("corrupt_mw_confirm_value")
        for l in range(1, self.n + 1):
            value = self.share_vector[l - 1]
            if corrupt is not None:
                value = corrupt(self.sid, l, value, self.field.prime)
            mgr.send_value(l, self.sid, "cnf", value)
        mgr.rb_broadcast(self.sid, "ack", None)

    def _on_confirm(self, src: int, body: object) -> None:
        if not self.field.is_element(body) or src in self.confirm_values:
            return
        self.confirm_values[src] = body
        if not self.L_frozen and self.monitor_poly is not None:
            self._maybe_step3(src)

    def _on_ack(self, src: int) -> None:
        # The hottest handler (one call per party per session per party):
        # each follow-up's cheap first guard is hoisted inline so settled
        # steps cost a comparison instead of a call.
        if src in self.acks:
            return
        self.acks.add(src)
        if not self.L_frozen and self.monitor_poly is not None:
            self._maybe_step3(src)
        if self.pid == self.moderator and not self.M_frozen:
            self._recheck_moderator()
        if self.pid == self.dealer and not self._dealer_acked:
            self._maybe_step7()
        if not self.share_completed and self.ok_received:
            self._maybe_complete_share()

    def _maybe_step3(self, l: int) -> None:
        """Step 3: record confirmer ``l`` if its value matches ``f̂_j(l)``.

        Additions stop once ``L_j`` is frozen by its broadcast (step 4) —
        the reconstruct duty map is derived from the broadcast sets, so
        later additions could never be cleared (see DESIGN.md).
        """
        if self.L_frozen or self.monitor_poly is None:
            return
        if l in self.L or l not in self.confirm_values or l not in self.acks:
            return
        expected = self.monitor_poly(l)
        if self.confirm_values[l] != expected:
            return
        self.L.add(l)
        if not self._deal_suppressed:
            self.manager.dmm.expect_deal(l, self.sid, expected)
        if len(self.L) >= self.n - self.t:
            self._freeze_l()

    def _freeze_l(self) -> None:
        """Step 4: broadcast ``L_j`` and send ``f̂_j(0)`` to the moderator."""
        self.L_frozen = True
        self.manager.rb_broadcast(self.sid, "L", tuple(sorted(self.L)))
        self.manager.send_value(
            self.moderator, self.sid, "ms", self.monitor_poly(0)
        )

    # -- moderator ---------------------------------------------------------
    def _on_moderator_poly(self, src: int, body: object, poly: object = None) -> None:
        if src != self.dealer or self.pid != self.moderator:
            return
        if self.moderator_poly is not None or not self._is_value_tuple(body, self.t + 1):
            return
        self.moderator_poly = (
            poly
            if poly is not None
            else interpolate_values(self.field, range(1, self.t + 2), body)
        )
        self._recheck_moderator()

    def _on_moderator_share(self, src: int, body: object) -> None:
        if self.pid != self.moderator or not self.field.is_element(body):
            return
        if src in self.moderator_shares:
            return
        self.moderator_shares[src] = body
        self._recheck_moderator(only=src)

    def _recheck_moderator(self, only: int | None = None) -> None:
        """Step 5: admit monitors whose data matches ``f̂`` and ``s'``."""
        if self.pid != self.moderator or self.M_frozen:
            return
        if self.moderator_poly is None or self.moderator_expected is None:
            return
        if self.moderator_poly(0) != self.moderator_expected:
            return  # dealer's f disagrees with s' — never admit anyone
        candidates = [only] if only is not None else list(self.moderator_shares)
        for j in candidates:
            if j in self.M or j not in self.moderator_shares:
                continue
            l_hat = self.L_hat.get(j)
            if l_hat is None or not l_hat <= self.acks:
                continue
            if self.moderator_shares[j] != self.moderator_poly(j):
                continue
            self.M.add(j)
            if self.M_frozen:
                break
            if len(self.M) >= self.n - self.t:
                self._freeze_m()
                break

    def _freeze_m(self) -> None:
        """Step 6: broadcast the frozen monitor set ``M``."""
        self.M_frozen = True
        m_set = tuple(sorted(self.M))
        corrupt = self.manager.host.deviation("corrupt_mw_M")
        if corrupt is not None:
            m_set = tuple(corrupt(self.sid, m_set))
        self.manager.rb_broadcast(self.sid, "M", m_set)

    # -- broadcast sets ------------------------------------------------------
    def _on_l_set(self, src: int, body: object) -> None:
        if src in self.L_hat:
            return
        fs = self._pid_fs(body)
        if fs is None or len(fs) < self.n - self.t:
            return
        self.L_hat[src] = fs
        if self.rv_batches:
            self._rv_dirty.update(self.rv_batches)
        if self.pid == self.moderator and not self.M_frozen:
            self._recheck_moderator(only=src)
        if self.pid == self.dealer and not self._dealer_acked:
            self._maybe_step7()
        if not self.share_completed and self.ok_received:
            self._maybe_complete_share()
        if self._rv_dirty and self.M_hat is not None:
            self._consume_rv_batches()
            self._maybe_output()

    def _on_m_set(self, src: int, body: object) -> None:
        if src != self.moderator or self.M_hat is not None:
            return
        fs = self._pid_fs(body)
        if fs is None or len(fs) < self.n - self.t:
            return
        self.M_hat = fs
        if self.rv_batches:
            self._rv_dirty.update(self.rv_batches)
        # Step 8: not being in M̂ means nobody will reconstruct our
        # monitored polynomial — drop the matching expectations and stop
        # recording new ones (reconstruct broadcasts only cover M̂ members,
        # so a late confirmer's expectation could never be discharged).
        if self.pid not in self.M_hat:
            self._deal_suppressed = True
            self.manager.dmm.drop_deal_expectations(self.sid)
        if self.pid == self.dealer and not self._dealer_acked:
            self._maybe_step7()
        if not self.share_completed and self.ok_received:
            self._maybe_complete_share()
        if self._rv_dirty:
            self._consume_rv_batches()
            self._maybe_output()

    def _on_ok(self, src: int) -> None:
        if src != self.dealer or self.ok_received:
            return
        self.ok_received = True
        self._maybe_complete_share()

    # -- dealer step 7 ------------------------------------------------------------
    def _maybe_step7(self) -> None:
        if self.pid != self.dealer or self._dealer_acked:
            return
        if self._deal_polys is None or self.M_hat is None:
            return
        for j in self.M_hat:
            l_hat = self.L_hat.get(j)
            if l_hat is None or not l_hat <= self.acks:
                return
        self._dealer_acked = True
        dmm = self.manager.dmm
        for j in self.M_hat:
            f_j = self._deal_polys[j]
            members = sorted(self.L_hat[j])
            for l, value in zip(members, f_j.evaluate_many(members)):
                dmm.expect_ack(l, self.sid, j, value)
        if self.manager.host.deviation("skip_mw_ok") is not None:
            return
        self.manager.rb_broadcast(self.sid, "ok", None)

    # -- step 9 -----------------------------------------------------------------
    def _maybe_complete_share(self) -> None:
        if self.share_completed or not self.ok_received or self.M_hat is None:
            return
        for l in self.M_hat:
            l_hat = self.L_hat.get(l)
            if l_hat is None or not l_hat <= self.acks:
                return
        self.share_completed = True
        self.manager.notify_mw_share_complete(self.sid)

    # ------------------------------------------------------------------
    # reconstruct protocol R'
    # ------------------------------------------------------------------
    def _send_reconstruct_values(self) -> None:
        """R' step 1: broadcast our dealer-given share of ``f_l`` for every
        monitor ``l ∈ M̂`` whose broadcast confirmer set contains us."""
        if self._rv_sent or self.share_vector is None:
            return
        batch = {}
        for l in self.M_hat or ():
            members = self.L_hat.get(l)
            if members is not None and self.pid in members:
                batch[l] = self.share_vector[l - 1]
        if not batch:
            return
        self._rv_sent = True
        corrupt = self.manager.host.deviation("corrupt_mw_reconstruct_values")
        if corrupt is not None:
            batch = corrupt(self.sid, batch, self.field.prime)
        self.manager.rb_broadcast(self.sid, "rv", tuple(sorted(batch.items())))

    def _on_reconstruct_values(
        self, src: int, body: object, batch: dict[int, int] | None = None
    ) -> None:
        # ``batch`` is the pre-parsed body from the batched ingestion path
        # (it already parsed once for the DMM reconstruct check).
        if batch is None:
            batch = self._parse_rv(body)
        if batch is None or src in self.rv_batches:
            return
        self.rv_batches[src] = batch
        self._rv_dirty.add(src)
        self._consume_rv_batches()
        self._maybe_output()

    def _parse_rv(self, body: object) -> dict[int, int] | None:
        if not isinstance(body, tuple):
            return None
        batch: dict[int, int] = {}
        for item in body:
            if (
                not isinstance(item, tuple)
                or len(item) != 2
                or not isinstance(item[0], int)
                or not (1 <= item[0] <= self.n)
                or not self.field.is_element(item[1])
            ):
                return None
            batch[item[0]] = item[1]
        return batch

    def _consume_rv_batches(self) -> None:
        """R' steps 2-3: gather t+1 points per monitor, then interpolate.

        Incremental: only dirty batches are scanned (iterated in batch
        arrival order, so which ``t + 1`` points win stays exactly the
        full-rescan order).  Point additions depend only on the ``L̂``/
        ``M̂`` sets and the dedup guards below, and every mutation of
        those sets re-dirties all batches, so the dirty set is a pure
        work filter — the consumed point set is unchanged.
        """
        if self.M_hat is None or not self._rv_dirty:
            return
        dirty = self._rv_dirty
        self._rv_dirty = set()
        m_hat = self.M_hat
        l_hat = self.L_hat
        K = self.K
        t = self.t
        for sender, batch in self.rv_batches.items():
            if sender not in dirty:
                continue
            for l, value in batch.items():
                if l not in m_hat:
                    continue
                members = l_hat.get(l)
                if members is None or sender not in members:
                    continue
                points = K.get(l)
                if points is None:
                    points = K[l] = []
                elif len(points) > t:
                    continue
                for k, _ in points:
                    if k == sender:
                        break
                else:
                    points.append((sender, value))
                    if len(points) == t + 1 and l not in self.f_bar:
                        self._interpolate_f_bar(l, points)

    def _interpolate_f_bar(self, l: int, points: list[tuple[int, int]]) -> None:
        # f̄_l is only ever evaluated at 0 (R' step 4), so a single
        # cached-basis dot product replaces the full coefficient
        # interpolation — same value mod p, a fraction of the work.
        # Sorted so delivery order cannot fragment the basis cache:
        # sender sets repeat across monitors and sessions, and the cache
        # key is the ordered node tuple.
        pts = sorted(points)
        basis = lagrange_basis(self.field, [k for k, _ in pts])
        self.f_bar[l] = basis.evaluate_at_zero([v for _, v in pts])

    def _maybe_output(self) -> None:
        """R' step 4: interpolate ``f̄`` through the monitors' free terms."""
        if self.output is not None or not self.reconstruct_begun:
            return
        if self.M_hat is None or any(l not in self.f_bar for l in self.M_hat):
            return
        points = [(l, self.f_bar[l]) for l in sorted(self.M_hat)]
        f_bar = interpolate_degree_t(self.field, points, self.t)
        self.output = f_bar(0) if f_bar is not None else BOTTOM
        self.manager.notify_mw_output(self.sid, self.output)

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _is_value_tuple(self, body: object, length: int) -> bool:
        return (
            isinstance(body, tuple)
            and len(body) == length
            and all(self.field.is_element(v) for v in body)
        )

    def _is_pid_tuple(self, body: object) -> bool:
        return self._pid_fs(body) is not None

    def _pid_fs(self, body: object) -> frozenset | None:
        """Validate a pid tuple and return its frozenset, ``None`` if bad.

        Validity depends only on (body, n), and the same L/M tuples recur
        across every sibling session and every delivery, so both the
        answer and the frozenset are memoized manager-wide (bounded;
        misses just recompute).
        """
        if not isinstance(body, tuple):
            return None
        cache = self.manager._pid_tuple_ok
        fs = cache.get(body, _MISSING)
        if fs is _MISSING:
            valid = len(set(body)) == len(body) and all(
                isinstance(p, int) and 1 <= p <= self.n for p in body
            )
            fs = frozenset(body) if valid else None
            if len(cache) < 4096:
                cache[body] = fs
        return fs


class GroupLane:
    """Structure-of-arrays view of one svec dealer-group's sibling sessions.

    The n sibling sessions of one dealer-group (the coin's per-slot MW-SVSS
    or SVSS instances) are arrayed by slot in :attr:`columns`, giving the
    batched ingestion path O(1) slot access without rebuilding the nested
    per-slot sid tuple for every entry of a vector.  Lanes are created
    lazily by ``VSSManager.ingest_vector`` and are a pure index: the
    manager's ``mw``/``svss`` dicts remain the owning tables, and a column
    is filled from them on first touch (so instances created by the local
    share path and by vector ingestion land in the same lane).

    The lane also hosts the *batch decode* pre-passes: for vectors whose
    bodies are polynomial value rows (``mon``/``mod``/``rows``), all
    well-shaped bodies are interpolated in one ``interpolate_values_rows``
    call — bit-identical per row to the per-slot ``interpolate_values``
    (same node set, same cached basis) — and the per-slot handlers receive
    the precomputed polynomial.  The pre-passes are *pure*: they validate
    with exactly the handlers' shape checks, never mutate instance state,
    and return ``None`` (per-slot decode) for senders that cannot pass the
    handlers' origin guards or for vectors with duplicate slots, so a
    handler that rejects a body never sees a poly it would not have
    computed itself.
    """

    __slots__ = ("group", "columns")

    def __init__(self, group: tuple):
        self.group = group
        #: slot -> session instance (MWSVSSInstance or SVSSInstance)
        self.columns: dict[int, object] = {}

    def monitor_polys(self, manager, src: int, kind: str, items: list) -> dict | None:
        """Batch-interpolate ``mon``/``mod`` bodies (values on 1..t+1)."""
        group = self.group
        if src != group[3]:
            return None  # handlers only accept these from the dealer
        if kind == "mod" and manager.pid != group[4]:
            return None  # only the moderator decodes f̂
        field = manager.field
        length = manager.t + 1
        is_element = field.is_element
        slots: list[int] = []
        rows: list[tuple] = []
        for slot, body in items:
            if (
                isinstance(body, tuple)
                and len(body) == length
                and all(is_element(v) for v in body)
            ):
                slots.append(slot)
                rows.append(body)
        if len(rows) < 2 or len(set(slots)) != len(slots):
            return None
        polys = interpolate_values_rows(field, range(1, length + 1), rows)
        return dict(zip(slots, polys))

    def row_polys(self, manager, src: int, items: list) -> dict | None:
        """Batch-interpolate SVSS ``rows`` bodies (g-row and h-row pairs)."""
        if src != self.group[2]:
            return None  # handlers only accept rows from the dealer
        field = manager.field
        length = manager.t + 1
        is_element = field.is_element
        slots: list[int] = []
        flat: list[tuple] = []
        for slot, body in items:
            if (
                isinstance(body, tuple)
                and len(body) == 2
                and all(
                    isinstance(part, tuple)
                    and len(part) == length
                    and all(is_element(v) for v in part)
                    for part in body
                )
            ):
                slots.append(slot)
                flat.extend(body)
        if len(slots) < 2 or len(set(slots)) != len(slots):
            return None
        polys = interpolate_values_rows(field, range(1, length + 1), flat)
        return {
            slot: (polys[2 * i], polys[2 * i + 1]) for i, slot in enumerate(slots)
        }
