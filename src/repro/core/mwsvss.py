"""MW-SVSS — moderated weak shunning verifiable secret sharing (paper §3.2).

One :class:`MWSVSSInstance` is one process' view of one MW-SVSS session
``(c, dealer)`` with a designated moderator.  The share protocol ``S'`` and
reconstruct protocol ``R'`` follow the paper step by step; comments carry
the paper's step numbers.

Wire messages (``sid`` is the session id):

private (``("v", sid, kind, body)``):

* ``"shl"`` dealer → j: the share vector ``(f_1(j), ..., f_n(j))``.
* ``"mon"`` dealer → l: the monitor polynomial ``f_l`` as values
  ``f_l(1..t+1)``.
* ``"mod"`` dealer → moderator: ``f`` as values ``f(1..t+1)``.
* ``"cnf"`` j → l: confirmation value ``f̂^j_l`` (j's share of ``f_l``).
* ``"ms"``  j → moderator: ``f̂_j(0)`` (j's monitored point of ``f``).

reliable broadcast (``("vss", sid, kind, body)``):

* ``"ack"`` — step 2 public acknowledgement.
* ``"L"``   — step 4, the frozen confirmer set ``L_j``.
* ``"M"``   — step 6, the moderator's frozen monitor set ``M``.
* ``"ok"``  — step 7, the dealer's go-ahead.
* ``"rv"``  — reconstruct step 1, batched values ``((monitor, value), ...)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.sessions import mw_dealer, mw_moderator
from repro.errors import ProtocolError
from repro.poly.fastpath import evaluate_rows, interpolate_values
from repro.poly.univariate import Polynomial, interpolate_degree_t

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import VSSManager


class _Bottom:
    """The default value ⊥ of weak binding (paper §2.2)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


BOTTOM = _Bottom()


class MWSVSSInstance:
    """One process' state machine for one MW-SVSS session."""

    def __init__(self, manager: "VSSManager", sid: tuple):
        self.manager = manager
        self.sid = sid
        self.pid = manager.pid
        self.n = manager.n
        self.t = manager.t
        self.field = manager.field
        self.dealer = mw_dealer(sid)
        self.moderator = mw_moderator(sid)

        # step 1-2 inputs
        self.share_vector: tuple[int, ...] | None = None  # (f̂^j_1 .. f̂^j_n)
        self.monitor_poly: Polynomial | None = None  # f̂_j
        self._step2_done = False

        # step 3-4 (monitor bookkeeping)
        self.confirm_values: dict[int, int] = {}  # l -> f̂^l_j (first wins)
        self.acks: set[int] = set()  # processes whose ack RB-delivered
        self.L: set[int] = set()
        self.L_frozen = False
        # step 8 applies from the moment M̂ excludes us: no further DEAL
        # expectations may be recorded for this session (a late confirmer's
        # expectation could never be discharged — see Lemma 1(b)).
        self._deal_suppressed = False

        # moderator state
        self.moderator_poly: Polynomial | None = None  # f̂ from the dealer
        self.moderator_expected: int | None = None  # s' (set via moderate())
        self.moderator_shares: dict[int, int] = {}  # j -> f̂^j_0
        self.M: set[int] = set()
        self.M_frozen = False

        # broadcast sets received
        self.L_hat: dict[int, frozenset[int]] = {}
        self.M_hat: frozenset[int] | None = None
        self.ok_received = False

        # dealer state
        self._deal_polys: list[Polynomial] | None = None  # [f, f_1, ..., f_n]
        self._dealer_acked = False  # step 7 done

        self.share_completed = False

        # reconstruct state
        self.reconstruct_begun = False
        self._rv_sent = False
        self.rv_batches: dict[int, dict[int, int]] = {}  # sender -> batch
        self.K: dict[int, list[tuple[int, int]]] = {}  # monitor l -> points
        self.f_bar: dict[int, Polynomial] = {}  # monitor l -> interpolated f̄_l
        self.output: int | _Bottom | None = None

    # ------------------------------------------------------------------
    # local API
    # ------------------------------------------------------------------
    def share(self, secret: int) -> None:
        """Dealer step 1: draw the polynomials and distribute the shares."""
        if self.pid != self.dealer:
            raise ProtocolError(f"{self.pid} is not the dealer of {self.sid}")
        if self._deal_polys is not None:
            raise ProtocolError(f"share already initiated for {self.sid}")
        field = self.field
        rng = self.manager.config.derive_rng("mw-deal", self.sid)
        f = Polynomial.random(field, self.t, rng, constant_term=secret)
        sub = [
            Polynomial.random(field, self.t, rng, constant_term=f(l))
            for l in range(1, self.n + 1)
        ]
        self._deal_polys = [f] + sub

        mgr = self.manager
        corrupt_values = mgr.host.deviation("corrupt_mw_share_values")
        eval_points = list(range(1, self.t + 2))
        pids = list(range(1, self.n + 1))
        # One batched multi-point pass over all n sub-polynomials (shared
        # power tables, one deferred reduction per cell);
        # rows[l-1][j-1] == f_l(j).
        rows = evaluate_rows(field, [p.coeffs for p in sub], pids)
        for j in pids:
            values = [rows[l - 1][j - 1] for l in pids]
            if corrupt_values is not None:
                values = corrupt_values(self.sid, j, values, field.prime)
            mgr.send_value(j, self.sid, "shl", tuple(values))
        for l in pids:
            mon = tuple(rows[l - 1][: self.t + 1])
            mgr.send_value(l, self.sid, "mon", mon)
        mgr.send_value(
            self.moderator, self.sid, "mod", tuple(f.evaluate_many(eval_points))
        )

    def moderate(self, expected: int) -> None:
        """Install the moderator's input value ``s'`` (enables step 5)."""
        if self.pid != self.moderator:
            raise ProtocolError(f"{self.pid} is not the moderator of {self.sid}")
        if self.moderator_expected is not None:
            return
        self.moderator_expected = expected % self.field.prime
        self._recheck_moderator()

    def begin_reconstruct(self) -> None:
        """Start protocol R' (requires a locally completed share)."""
        if not self.share_completed:
            raise ProtocolError(f"share of {self.sid} not complete at {self.pid}")
        if self.reconstruct_begun:
            return
        self.reconstruct_begun = True
        self._send_reconstruct_values()
        self._consume_rv_batches()
        self._maybe_output()

    # ------------------------------------------------------------------
    # message handling (post-DMM)
    # ------------------------------------------------------------------
    def handle(self, src: int, kind: str, body: object) -> None:
        if kind == "shl":
            self._on_share_vector(src, body)
        elif kind == "mon":
            self._on_monitor_poly(src, body)
        elif kind == "mod":
            self._on_moderator_poly(src, body)
        elif kind == "cnf":
            self._on_confirm(src, body)
        elif kind == "ms":
            self._on_moderator_share(src, body)
        elif kind == "ack":
            self._on_ack(src)
        elif kind == "L":
            self._on_l_set(src, body)
        elif kind == "M":
            self._on_m_set(src, body)
        elif kind == "ok":
            self._on_ok(src)
        elif kind == "rv":
            self._on_reconstruct_values(src, body)

    # -- share phase -----------------------------------------------------
    def _on_share_vector(self, src: int, body: object) -> None:
        if src != self.dealer or self.share_vector is not None:
            return
        if not self._is_value_tuple(body, self.n):
            return
        self.share_vector = tuple(body)
        self._maybe_step2()

    def _on_monitor_poly(self, src: int, body: object) -> None:
        if src != self.dealer or self.monitor_poly is not None:
            return
        if not self._is_value_tuple(body, self.t + 1):
            return
        self.monitor_poly = interpolate_values(
            self.field, range(1, self.t + 2), body
        )
        self._maybe_step2()
        for l in list(self.confirm_values):
            self._maybe_step3(l)

    def _maybe_step2(self) -> None:
        """Step 2: confirm privately to every monitor and ack publicly."""
        if self._step2_done or self.share_vector is None or self.monitor_poly is None:
            return
        self._step2_done = True
        mgr = self.manager
        corrupt = mgr.host.deviation("corrupt_mw_confirm_value")
        for l in range(1, self.n + 1):
            value = self.share_vector[l - 1]
            if corrupt is not None:
                value = corrupt(self.sid, l, value, self.field.prime)
            mgr.send_value(l, self.sid, "cnf", value)
        mgr.rb_broadcast(self.sid, "ack", None)

    def _on_confirm(self, src: int, body: object) -> None:
        if not self.field.is_element(body) or src in self.confirm_values:
            return
        self.confirm_values[src] = body
        self._maybe_step3(src)

    def _on_ack(self, src: int) -> None:
        if src in self.acks:
            return
        self.acks.add(src)
        self._maybe_step3(src)
        if self.pid == self.moderator:
            self._recheck_moderator()
        self._maybe_step7()
        self._maybe_complete_share()

    def _maybe_step3(self, l: int) -> None:
        """Step 3: record confirmer ``l`` if its value matches ``f̂_j(l)``.

        Additions stop once ``L_j`` is frozen by its broadcast (step 4) —
        the reconstruct duty map is derived from the broadcast sets, so
        later additions could never be cleared (see DESIGN.md).
        """
        if self.L_frozen or self.monitor_poly is None:
            return
        if l in self.L or l not in self.confirm_values or l not in self.acks:
            return
        expected = self.monitor_poly(l)
        if self.confirm_values[l] != expected:
            return
        self.L.add(l)
        if not self._deal_suppressed:
            self.manager.dmm.expect_deal(l, self.sid, expected)
        if len(self.L) >= self.n - self.t:
            self._freeze_l()

    def _freeze_l(self) -> None:
        """Step 4: broadcast ``L_j`` and send ``f̂_j(0)`` to the moderator."""
        self.L_frozen = True
        self.manager.rb_broadcast(self.sid, "L", tuple(sorted(self.L)))
        self.manager.send_value(
            self.moderator, self.sid, "ms", self.monitor_poly(0)
        )

    # -- moderator ---------------------------------------------------------
    def _on_moderator_poly(self, src: int, body: object) -> None:
        if src != self.dealer or self.pid != self.moderator:
            return
        if self.moderator_poly is not None or not self._is_value_tuple(body, self.t + 1):
            return
        self.moderator_poly = interpolate_values(
            self.field, range(1, self.t + 2), body
        )
        self._recheck_moderator()

    def _on_moderator_share(self, src: int, body: object) -> None:
        if self.pid != self.moderator or not self.field.is_element(body):
            return
        if src in self.moderator_shares:
            return
        self.moderator_shares[src] = body
        self._recheck_moderator(only=src)

    def _recheck_moderator(self, only: int | None = None) -> None:
        """Step 5: admit monitors whose data matches ``f̂`` and ``s'``."""
        if self.pid != self.moderator or self.M_frozen:
            return
        if self.moderator_poly is None or self.moderator_expected is None:
            return
        if self.moderator_poly(0) != self.moderator_expected:
            return  # dealer's f disagrees with s' — never admit anyone
        candidates = [only] if only is not None else list(self.moderator_shares)
        for j in candidates:
            if j in self.M or j not in self.moderator_shares:
                continue
            l_hat = self.L_hat.get(j)
            if l_hat is None or not l_hat <= self.acks:
                continue
            if self.moderator_shares[j] != self.moderator_poly(j):
                continue
            self.M.add(j)
            if self.M_frozen:
                break
            if len(self.M) >= self.n - self.t:
                self._freeze_m()
                break

    def _freeze_m(self) -> None:
        """Step 6: broadcast the frozen monitor set ``M``."""
        self.M_frozen = True
        m_set = tuple(sorted(self.M))
        corrupt = self.manager.host.deviation("corrupt_mw_M")
        if corrupt is not None:
            m_set = tuple(corrupt(self.sid, m_set))
        self.manager.rb_broadcast(self.sid, "M", m_set)

    # -- broadcast sets ------------------------------------------------------
    def _on_l_set(self, src: int, body: object) -> None:
        if src in self.L_hat or not self._is_pid_tuple(body):
            return
        if len(body) < self.n - self.t:
            return
        self.L_hat[src] = frozenset(body)
        if self.pid == self.moderator:
            self._recheck_moderator(only=src)
        self._maybe_step7()
        self._maybe_complete_share()
        self._consume_rv_batches()
        self._maybe_output()

    def _on_m_set(self, src: int, body: object) -> None:
        if src != self.moderator or self.M_hat is not None:
            return
        if not self._is_pid_tuple(body) or len(body) < self.n - self.t:
            return
        self.M_hat = frozenset(body)
        # Step 8: not being in M̂ means nobody will reconstruct our
        # monitored polynomial — drop the matching expectations and stop
        # recording new ones (reconstruct broadcasts only cover M̂ members,
        # so a late confirmer's expectation could never be discharged).
        if self.pid not in self.M_hat:
            self._deal_suppressed = True
            self.manager.dmm.drop_deal_expectations(self.sid)
        self._maybe_step7()
        self._maybe_complete_share()
        self._consume_rv_batches()
        self._maybe_output()

    def _on_ok(self, src: int) -> None:
        if src != self.dealer or self.ok_received:
            return
        self.ok_received = True
        self._maybe_complete_share()

    # -- dealer step 7 ------------------------------------------------------------
    def _maybe_step7(self) -> None:
        if self.pid != self.dealer or self._dealer_acked:
            return
        if self._deal_polys is None or self.M_hat is None:
            return
        for j in self.M_hat:
            l_hat = self.L_hat.get(j)
            if l_hat is None or not l_hat <= self.acks:
                return
        self._dealer_acked = True
        dmm = self.manager.dmm
        for j in self.M_hat:
            f_j = self._deal_polys[j]
            members = sorted(self.L_hat[j])
            for l, value in zip(members, f_j.evaluate_many(members)):
                dmm.expect_ack(l, self.sid, j, value)
        if self.manager.host.deviation("skip_mw_ok") is not None:
            return
        self.manager.rb_broadcast(self.sid, "ok", None)

    # -- step 9 -----------------------------------------------------------------
    def _maybe_complete_share(self) -> None:
        if self.share_completed or not self.ok_received or self.M_hat is None:
            return
        for l in self.M_hat:
            l_hat = self.L_hat.get(l)
            if l_hat is None or not l_hat <= self.acks:
                return
        self.share_completed = True
        self.manager.notify_mw_share_complete(self.sid)

    # ------------------------------------------------------------------
    # reconstruct protocol R'
    # ------------------------------------------------------------------
    def _send_reconstruct_values(self) -> None:
        """R' step 1: broadcast our dealer-given share of ``f_l`` for every
        monitor ``l ∈ M̂`` whose broadcast confirmer set contains us."""
        if self._rv_sent or self.share_vector is None:
            return
        batch = {}
        for l in self.M_hat or ():
            members = self.L_hat.get(l)
            if members is not None and self.pid in members:
                batch[l] = self.share_vector[l - 1]
        if not batch:
            return
        self._rv_sent = True
        corrupt = self.manager.host.deviation("corrupt_mw_reconstruct_values")
        if corrupt is not None:
            batch = corrupt(self.sid, batch, self.field.prime)
        self.manager.rb_broadcast(self.sid, "rv", tuple(sorted(batch.items())))

    def _on_reconstruct_values(self, src: int, body: object) -> None:
        batch = self._parse_rv(body)
        if batch is None or src in self.rv_batches:
            return
        self.rv_batches[src] = batch
        self._consume_rv_batches()
        self._maybe_output()

    def _parse_rv(self, body: object) -> dict[int, int] | None:
        if not isinstance(body, tuple):
            return None
        batch: dict[int, int] = {}
        for item in body:
            if (
                not isinstance(item, tuple)
                or len(item) != 2
                or not isinstance(item[0], int)
                or not (1 <= item[0] <= self.n)
                or not self.field.is_element(item[1])
            ):
                return None
            batch[item[0]] = item[1]
        return batch

    def _consume_rv_batches(self) -> None:
        """R' steps 2-3: gather t+1 points per monitor, then interpolate."""
        if self.M_hat is None:
            return
        for sender, batch in self.rv_batches.items():
            for l, value in batch.items():
                if l not in self.M_hat:
                    continue
                members = self.L_hat.get(l)
                if members is None or sender not in members:
                    continue
                points = self.K.setdefault(l, [])
                if len(points) > self.t or any(k == sender for k, _ in points):
                    continue
                points.append((sender, value))
                if len(points) == self.t + 1 and l not in self.f_bar:
                    # Sorted so delivery order cannot fragment the basis
                    # cache: sender sets repeat across monitors and
                    # sessions, and the cache key is the ordered node tuple.
                    pts = sorted(points)
                    self.f_bar[l] = interpolate_values(
                        self.field,
                        [k for k, _ in pts],
                        [v for _, v in pts],
                    )

    def _maybe_output(self) -> None:
        """R' step 4: interpolate ``f̄`` through the monitors' free terms."""
        if self.output is not None or not self.reconstruct_begun:
            return
        if self.M_hat is None or any(l not in self.f_bar for l in self.M_hat):
            return
        points = [(l, self.f_bar[l](0)) for l in sorted(self.M_hat)]
        f_bar = interpolate_degree_t(self.field, points, self.t)
        self.output = f_bar(0) if f_bar is not None else BOTTOM
        self.manager.notify_mw_output(self.sid, self.output)

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _is_value_tuple(self, body: object, length: int) -> bool:
        return (
            isinstance(body, tuple)
            and len(body) == length
            and all(self.field.is_element(v) for v in body)
        )

    def _is_pid_tuple(self, body: object) -> bool:
        return (
            isinstance(body, tuple)
            and len(set(body)) == len(body)
            and all(isinstance(p, int) and 1 <= p <= self.n for p in body)
        )
