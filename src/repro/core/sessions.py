"""Session identifiers and the per-process session partial order ``→_i``.

The paper (§2) tags every VSS invocation with a session id and defines
``(c, i) →_j (c', i')`` iff process ``j`` completed the reconstruct of
session ``(c, i)`` before it began the share of session ``(c', i')``.  The
DMM delay rule is expressed in terms of this order.

Session ids here are hashable tuples:

* MW-SVSS: ``("mw", parent, dealer, moderator, slot)`` — ``parent`` ties the
  invocation to its enclosing SVSS session (or ``("solo", c)`` for direct
  use); ``slot`` distinguishes the two dealings per ordered pair in SVSS
  (``"dm"`` shares ``f(dealer, moderator)``, ``"md"`` shares
  ``f(moderator, dealer)``).
* SVSS: ``("svss", tag, dealer)`` — ``tag`` is the caller's context (a
  counter, or ``(coin_session, slot)`` inside the common coin).
"""

from __future__ import annotations

MW = "mw"
SVSS = "svss"


def mw_session(parent: tuple, dealer: int, moderator: int, slot: str) -> tuple:
    return (MW, parent, dealer, moderator, slot)


def svss_session(tag: object, dealer: int) -> tuple:
    return (SVSS, tag, dealer)


def mw_dealer(sid: tuple) -> int:
    return sid[2]


def mw_moderator(sid: tuple) -> int:
    return sid[3]


def svss_dealer(sid: tuple) -> int:
    return sid[2]


def is_mw(sid: tuple) -> bool:
    return isinstance(sid, tuple) and len(sid) == 5 and sid[0] == MW


def is_svss(sid: tuple) -> bool:
    return isinstance(sid, tuple) and len(sid) == 3 and sid[0] == SVSS


class SessionClock:
    """Monotone per-process event clock recording session begin/complete.

    ``begin`` is stamped when the process first participates in a session's
    share protocol (initiation or first delivered message); ``complete`` is
    stamped when the process completes the session's reconstruct.  These two
    stamps define ``→_i`` exactly as §2 does.
    """

    __slots__ = ("_tick", "begun", "completed")

    def __init__(self) -> None:
        self._tick = 0
        self.begun: dict[tuple, int] = {}
        self.completed: dict[tuple, int] = {}

    def _next(self) -> int:
        self._tick += 1
        return self._tick

    def note_begin(self, sid: tuple) -> None:
        if sid not in self.begun:
            self.begun[sid] = self._next()

    def note_complete(self, sid: tuple) -> None:
        if sid not in self.completed:
            self.completed[sid] = self._next()

    def precedes(self, first: tuple, second: tuple) -> bool:
        """``first →_i second``: reconstruct of ``first`` completed before
        the share of ``second`` began (both locally)."""
        done = self.completed.get(first)
        if done is None:
            return False
        begun = self.begun.get(second)
        return begun is not None and done < begun
