"""Session identifiers and the per-process session partial order ``→_i``.

The paper (§2) tags every VSS invocation with a session id and defines
``(c, i) →_j (c', i')`` iff process ``j`` completed the reconstruct of
session ``(c, i)`` before it began the share of session ``(c', i')``.  The
DMM delay rule is expressed in terms of this order.

Session ids here are hashable tuples:

* MW-SVSS: ``("mw", parent, dealer, moderator, slot)`` — ``parent`` ties the
  invocation to its enclosing SVSS session (or ``("solo", c)`` for direct
  use); ``slot`` distinguishes the two dealings per ordered pair in SVSS
  (``"dm"`` shares ``f(dealer, moderator)``, ``"md"`` shares
  ``f(moderator, dealer)``).
* SVSS: ``("svss", tag, dealer)`` — ``tag`` is the caller's context (a
  counter, or ``(coin_session, slot)`` inside the common coin).

Slot-vector groups
------------------
The common coin runs one SVSS session per ``(dealer, slot)`` with
``slot ∈ 1..n`` and tag ``(csid, slot)``; every session of one dealer
follows the same step schedule, so the session-vector transport
(:mod:`repro.core.vectormux`) aggregates their messages per *group* — the
session id with the slot stripped out:

* SVSS ``("svss", (csid, slot), d)``          ↔ group ``("s", csid, d)``
* MW ``("mw", ("svss", (csid, slot), d), j, l, ms)``
                                              ↔ group ``("m", csid, d, j, l, ms)``

:func:`svec_split` maps a session id to its ``(group, slot)`` (for
*registered* coin families only, so ordinary tags like
``("solo-svss", 0)`` are never mistaken for a slot), and
:func:`svec_sid` inverts the mapping on the receive side.
"""

from __future__ import annotations

from collections.abc import Container

MW = "mw"
SVSS = "svss"


def mw_session(parent: tuple, dealer: int, moderator: int, slot: str) -> tuple:
    return (MW, parent, dealer, moderator, slot)


def svss_session(tag: object, dealer: int) -> tuple:
    return (SVSS, tag, dealer)


def mw_dealer(sid: tuple) -> int:
    return sid[2]


def mw_moderator(sid: tuple) -> int:
    return sid[3]


def svss_dealer(sid: tuple) -> int:
    return sid[2]


def is_mw(sid: tuple) -> bool:
    return isinstance(sid, tuple) and len(sid) == 5 and sid[0] == MW


def is_svss(sid: tuple) -> bool:
    return isinstance(sid, tuple) and len(sid) == 3 and sid[0] == SVSS


# -- slot-vector groups (see module docstring) -------------------------------

#: group-kind markers: "s" = SVSS-level group, "m" = MW-level group.
SVEC_SVSS = "s"
SVEC_MW = "m"


def svec_split(sid: tuple, families: Container) -> tuple[tuple, object] | None:
    """``(group, slot)`` when ``sid`` belongs to a registered slot family.

    ``families`` holds the coin session ids whose per-slot sessions may be
    vectorized; anything else (solo sessions, plain counters) returns None
    and travels per session.  Only called on locally built session ids, so
    no defensive shape validation is needed beyond the family lookup.
    """
    if sid[0] == SVSS:
        tag = sid[1]
        if type(tag) is tuple and len(tag) == 2 and tag[0] in families:
            return (SVEC_SVSS, tag[0], sid[2]), tag[1]
    elif sid[0] == MW:
        parent = sid[1]
        if type(parent) is tuple and len(parent) == 3 and parent[0] == SVSS:
            tag = parent[1]
            if type(tag) is tuple and len(tag) == 2 and tag[0] in families:
                return (SVEC_MW, tag[0], parent[2], sid[2], sid[3], sid[4]), tag[1]
    return None


def svec_sid(group: tuple, slot: object) -> tuple:
    """Rebuild the per-slot session id of ``group`` (inverse of
    :func:`svec_split`); the caller validated the group shape."""
    if group[0] == SVEC_SVSS:
        return (SVSS, (group[1], slot), group[2])
    return (MW, (SVSS, (group[1], slot), group[2]), group[3], group[4], group[5])


def svec_group_wellformed(group: object) -> bool:
    """Shape check for a *network-supplied* group id.

    Only the structure the rebuild needs is validated here — the per-slot
    session ids it produces go through the ordinary ``VSSManager`` session
    validation, so a forged group grants nothing beyond forging the
    per-slot messages directly.
    """
    if type(group) is not tuple or not group:
        return False
    if group[0] == SVEC_SVSS:
        return len(group) == 3
    if group[0] == SVEC_MW:
        return len(group) == 6 and group[5] in ("md", "dm")
    return False


class SessionClock:
    """Monotone per-process event clock recording session begin/complete.

    ``begin`` is stamped when the process first participates in a session's
    share protocol (initiation or first delivered message); ``complete`` is
    stamped when the process completes the session's reconstruct.  These two
    stamps define ``→_i`` exactly as §2 does.
    """

    __slots__ = ("_tick", "begun", "completed")

    def __init__(self) -> None:
        self._tick = 0
        self.begun: dict[tuple, int] = {}
        self.completed: dict[tuple, int] = {}

    def _next(self) -> int:
        self._tick += 1
        return self._tick

    def note_begin(self, sid: tuple) -> None:
        if sid not in self.begun:
            self.begun[sid] = self._next()

    def note_complete(self, sid: tuple) -> None:
        if sid not in self.completed:
            self.completed[sid] = self._next()

    def precedes(self, first: tuple, second: tuple) -> bool:
        """``first →_i second``: reconstruct of ``first`` completed before
        the share of ``second`` began (both locally)."""
        done = self.completed.get(first)
        if done is None:
            return False
        begun = self.begun.get(second)
        return begun is not None and done < begun
