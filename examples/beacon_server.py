#!/usr/bin/env python3
"""A height-indexed randomness-beacon *server* over real TCP sockets.

Where ``randomness_beacon.py`` runs the shunning common coin inside the
simulator, this example serves it over the actual network transport
(:mod:`repro.net`): four protocol processes connected by asyncio TCP on
localhost flip the full MW-SVSS coin once per *height*, and a beacon
front-end answers client requests for ``height -> bit``.

Two robustness properties are on display:

* **request queueing** — clients may ask for any height, in any order,
  before it exists; requests park in per-height queues and resolve the
  moment that height's flip completes (never out of order, never lost);
* **crash survival** — one process's transport is scripted to crash
  mid-stream: the surviving quorum (n - t = 3) keeps producing heights,
  and after the crashed process reconnects (epoch handshake + seq
  resync, see ``docs/NETWORK.md``) it rejoins the very next height.

Run:  python examples/beacon_server.py
"""

import asyncio

from repro import SystemConfig
from repro.net.cluster import NetCluster
from repro.net.transport import TransportConfig

HEIGHTS = 4
CRASH_PID = 3
CRASH_BEFORE_HEIGHT = 2  # crash during this height, revive for the next

TCONF = TransportConfig(
    connect_timeout=0.5,
    backoff_base=0.02,
    backoff_max=0.2,
    heartbeat_interval=0.2,
    idle_timeout=3.0,
    rto=0.15,
    down_after=1.0,
)


class BeaconServer:
    """Serve ``height -> coin bit`` with request queueing.

    ``request(height)`` returns a future usable at any time; it resolves
    when the beacon reaches that height.  One coin flip per height runs
    over the cluster's real sockets.
    """

    def __init__(self, cluster: NetCluster):
        self.cluster = cluster
        self.chain: dict[int, int] = {}
        self._waiters: dict[int, list[asyncio.Future]] = {}

    def request(self, height: int) -> asyncio.Future:
        future = asyncio.get_running_loop().create_future()
        if height in self.chain:
            future.set_result(self.chain[height])
        else:
            self._waiters.setdefault(height, []).append(future)
        return future

    async def produce(self, height: int, faulty: set | None = None) -> int:
        outputs = await self.cluster.flip_coin(
            session=height, timeout=120, faulty=faulty
        )
        live = sorted(outputs)
        values = {outputs[pid] for pid in live}
        # A split output is a legal (probability <= epsilon) coin outcome;
        # the beacon canonicalizes by majority so the chain stays total.
        bit = max(values, key=lambda v: sum(outputs[p] == v for p in live))
        self.chain[height] = bit
        for future in self._waiters.pop(height, []):
            if not future.done():
                future.set_result(bit)
        tag = "unanimous" if len(values) == 1 else f"split {values} -> {bit}"
        print(f"  height {height}: outputs {outputs}  [{tag}]")
        return bit


async def client(name: str, beacon: BeaconServer, heights: list[int]) -> None:
    """A beacon consumer asking for heights out of order, ahead of time."""
    for height in heights:
        bit = await beacon.request(height)
        print(f"  client {name}: beacon[{height}] = {bit}")


async def main() -> None:
    config = SystemConfig(n=4, seed=11)
    cluster = NetCluster(config, tconfig=TCONF)
    await cluster.start()
    beacon = BeaconServer(cluster)
    print(f"beacon server: n={config.n}, t={config.t}, "
          f"{HEIGHTS} heights over real TCP")
    print(f"scripted crash: pid {CRASH_PID} transport dies during height "
          f"{CRASH_BEFORE_HEIGHT}, reconnects for height "
          f"{CRASH_BEFORE_HEIGHT + 1}")
    print()

    # Clients queue requests before any height exists — out of order and
    # ahead of production; the queues must serve them all.
    clients = asyncio.gather(
        client("A", beacon, [0, 1, 2, 3]),
        client("B", beacon, [3, 0]),
        client("C", beacon, [2]),
    )

    try:
        for height in range(HEIGHTS):
            faulty = None
            if height == CRASH_BEFORE_HEIGHT:
                print(f"  !! killing pid {CRASH_PID}'s transport")
                await cluster.kill_node(CRASH_PID)
                faulty = {CRASH_PID}
            elif height == CRASH_BEFORE_HEIGHT + 1:
                print(f"  !! reviving pid {CRASH_PID}'s transport")
                await cluster.revive_node(CRASH_PID)
            await beacon.produce(height, faulty=faulty)
        await asyncio.wait_for(clients, timeout=10)
    finally:
        await cluster.close()

    bits = [beacon.chain[h] for h in range(HEIGHTS)]
    print()
    print(f"beacon chain: {bits}")
    print("every queued request was served, across a transport crash and")
    print("reconnect — the quorum of n - t processes kept the chain alive.")


if __name__ == "__main__":
    asyncio.run(main())
