#!/usr/bin/env python3
"""Experiment sweeps: thousand-run scenario matrices in one call.

The paper's guarantees are statistical, so checking them means running the
protocol many times under many adversarial conditions.  The harness in
``repro.sim.experiments`` fans a ``n x scheduler x adversary x seed``
matrix across worker processes and aggregates the results into the
statistics tables the analysis layer provides.

Engine knobs demonstrated here (see also ROADMAP.md "Performance"):

* ``engine="flat"`` (the default) — frozen flat routing table, bucketed
  calendar queue under fixed-delay schedulers, batched ``send_all``
  fan-outs, and notification-driven ``run_until`` waits.  2-4x the
  events/sec of the seed engine.
* ``engine="legacy"`` — the seed dispatch core (heap + per-event
  ``deliver`` + per-event predicate polling), kept for A/B determinism
  regressions: same seed => identical decisions and event counts.
* ``trace_level`` — ``TRACE_COUNTS`` (sweep default) keeps message
  counters; ``TRACE_OFF`` strips all per-message accounting for pure
  wall-clock work.

Run:  python examples/experiment_sweep.py [workers]
"""

import sys
from dataclasses import replace

from repro.analysis.complexity import fit_power_law
from repro.sim.experiments import run_matrix, run_scenario, scenario_matrix


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else None

    # 720 seeded agreement runs: 2 sizes x 3 network schedules x
    # 3 corruption patterns x 40 seeds, ideal coin (the large-n stand-in).
    matrix = scenario_matrix(
        ns=(4, 7),
        schedulers=("fifo", "uniform", "partition"),
        adversaries=("none", "silent-one", "crash-one"),
        seeds=range(40),
    )
    print(f"sweeping {len(matrix)} scenarios...")
    sweep = run_matrix(matrix, workers=workers)

    print()
    print(sweep.table())
    print()
    low, high = sweep.agreement_ci95()
    print(f"agreement rate : {sweep.agreement_rate:.4f}  CI95 [{low:.3f}, {high:.3f}]")
    fit = fit_power_law(sweep.complexity_points("total_messages"))
    print(f"message growth : ~ n^{fit.exponent:.2f} (R^2 {fit.r_squared:.3f})")

    # A/B the dispatch engines on one scenario: identical outcomes,
    # different cost model (the bench measures the speedup itself).
    base = matrix[0]
    flat = run_scenario(base)
    legacy = run_scenario(replace(base, engine="legacy"))
    assert (flat.decision, flat.events_dispatched) == (
        legacy.decision,
        legacy.events_dispatched,
    )
    print(
        f"engine A/B     : flat re-evaluated its wait predicate "
        f"{flat.predicate_evals}x vs legacy {legacy.predicate_evals}x "
        f"over {flat.events_dispatched} events"
    )


if __name__ == "__main__":
    main()
