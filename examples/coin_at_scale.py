#!/usr/bin/env python3
"""Coin at scale: flip the SVSS shunning common coin at n = 10.

One common-coin invocation runs n² = 100 concurrent per-slot SVSS
sharings (each fanning out MW-SVSS sub-sessions), whose uncoalesced
per-session traffic is ~105M logical messages at n = 10 — past the
simulator's 50M-event livelock guard, i.e. unrunnable before semantic
aggregation.  With session-vector messages (``svec=True``, one
``("svec", ...)`` message per (step, dealer-group) instead of n
per-session messages) plus wire coalescing (``coalesce=True``, one
envelope per (src, dst) pair per step) the same invocation is ~10.5M
logical messages on ~850k events and completes in minutes, with
bit-identical coin outputs.

Batched ingestion (on by default, ``REPRO_BATCH_INGEST=0`` to compare)
then attacks the receive side: each slot-vector is admitted through one
group-level DMM verdict probe instead of n per-slot calls, and its
sibling-session transitions run as structure-of-arrays rows — same
outputs, a fraction of the per-slot handler work.

The algebra underneath all of it runs on the swappable vectorized
backend (``REPRO_ALGEBRA_BACKEND`` ∈ pure/numpy/auto, or the second
argument below): with numpy importable, the row-shaped interpolation /
evaluation batches go through int64 modular kernels — bit-identical
outputs, counted by ``rows_vectorized`` / ``backend_fallbacks``.

Run:  python examples/coin_at_scale.py [n] [backend]   (default n = 10,
      backend = auto)
"""

import sys
import time

from repro import SystemConfig
from repro.core.api import flip_common_coin
from repro.sim.scheduler import FifoScheduler
from repro.sim.tracing import TRACE_OFF


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    backend = sys.argv[2] if len(sys.argv) > 2 else None
    config = SystemConfig(n=n, seed=7)
    print(f"flipping the SVSS common coin: n={n}, t={config.t}, "
          "svec+coalesce on")
    print("(uncoalesced per-session baseline at n=10: ~105M logical "
          "messages, > the 50M-event guard)")

    start = time.perf_counter()
    result, stack = flip_common_coin(
        config,
        scheduler=FifoScheduler(),
        trace_level=TRACE_OFF,
        svec=True,
        coalesce=True,
        algebra_backend=backend,
    )
    wall = time.perf_counter() - start

    bits = sorted(set(result.outputs.values()))
    print()
    print(f"coin output        : {bits} at all {len(result.outputs)} processes"
          f" ({'unanimous' if len(bits) == 1 else 'split'})")
    print(f"wall-clock         : {wall:.1f}s")
    print(f"events dispatched  : {result.events_dispatched:,}")
    print(f"logical messages   : {result.logical_messages:,}")
    print(f"  slot-vectors     : {result.svec_packed:,} "
          f"(folding {result.svec_slots:,} per-session messages, "
          f"~{result.svec_slots / max(1, result.svec_packed):.1f} slots each)")
    print(f"  envelopes        : {result.envelopes_pushed:,} "
          f"(carrying {result.payloads_coalesced:,} logical messages)")
    if result.svec_batch_ingested:
        print(f"batched ingestion  : {result.svec_batch_ingested:,} vectors "
              f"group-admitted ({result.dmm_verdicts_batched:,} slot verdicts "
              f"batched, {result.dmm_verdict_fallbacks:,} per-slot fallbacks)")
        print(f"DMM verdict calls  : {result.dmm_verdict_calls:,}")
    else:
        print(f"batched ingestion  : off (per-slot path; "
              f"{result.dmm_verdict_calls:,} DMM verdict calls)")
    print(f"algebra backend    : {result.algebra_backend} "
          f"({result.rows_vectorized:,} rows vectorized, "
          f"{result.backend_fallbacks:,} pure-path fallbacks)")
    print(f"logical msgs/event : {result.logical_messages / result.events_dispatched:.1f}")
    print(f"throughput         : {result.logical_messages / wall:,.0f} "
          "logical messages/s")


if __name__ == "__main__":
    main()
