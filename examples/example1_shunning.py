#!/usr/bin/env python3
"""Walkthrough of the paper's Example 1 (§3.3): weak binding breaks, the
shunning mechanism pays for it.

A faulty dealer crafts reconstruct values so that two *nonfaulty*
processes complete the same MW-SVSS invocation with different non-⊥
values — the strongest misbehaviour MW-SVSS permits.  The paper's answer
is not to prevent it (that would cost the error probability Canetti-Rabin
pay) but to make it *expensive*: the crafted lie necessarily conflicts
with a recorded ACK/DEAL expectation, so the dealer lands in a nonfaulty
process' D set and is ignored in every later session.  At most
t(n-t) = O(n^2) such breaks can ever happen — which is the whole
almost-sure-termination argument of Theorem 1.

Run:  python examples/example1_shunning.py
"""

from repro.core.dmm import DISCARD
from repro.core.sessions import mw_session
from repro.scenarios import (
    DEALER,
    FAKE_SECRET,
    MODERATOR,
    TRUE_SECRET,
    run_example1,
)


def main() -> None:
    print("Example 1 (paper §3.3): n=4, t=1")
    print(f"  dealer   : process {DEALER} (faulty, crafts its reconstruct lies)")
    print(f"  moderator: process {MODERATOR}")
    print("  process 4: delayed by the adversarial schedule")
    print(f"  true secret {TRUE_SECRET}, crafted fake secret {FAKE_SECRET}")
    print()

    outcome = run_example1(seed=0)

    print(f"share completed at: {sorted(outcome.share_completed)}")
    print(f"outputs: {outcome.outputs}")
    print()
    assert outcome.outputs[MODERATOR] == TRUE_SECRET
    assert outcome.outputs[3] == FAKE_SECRET
    print(
        f"process {MODERATOR} reconstructed {outcome.outputs[MODERATOR]}, "
        f"process 3 reconstructed {outcome.outputs[3]} - two NONFAULTY "
        "processes disagree on non-bottom values."
    )
    print()

    pairs = sorted(outcome.stack.trace.shun_pairs())
    print(f"shun pairs recorded: {pairs}")
    observer = next(o for o, c in pairs if c == DEALER)
    future = mw_session(("future", 0), DEALER, MODERATOR, "dm")
    verdict = outcome.stack.vss[observer].dmm.filter_verdict(DEALER, future)
    assert verdict == DISCARD
    print(
        f"process {observer} now discards everything dealer {DEALER} sends "
        "in future sessions - one of the O(n^2) shun pairs is spent, "
        "which is exactly how Theorem 1 bounds the adversary."
    )


if __name__ == "__main__":
    main()
