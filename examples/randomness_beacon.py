#!/usr/bin/env python3
"""A distributed randomness beacon built on the shunning common coin.

The paper's SCC is exactly the primitive behind modern "drand"-style
randomness beacons: n mutually distrusting parties jointly produce a
stream of bits that (a) every honest party agrees on with constant
probability per flip and (b) no coalition of up to t parties can predict
or fix.  This example runs a beacon for several epochs on the full SVSS
stack, with one party trying to bias every flip toward 0 by dealing
all-zero secrets — and failing.

Run:  python examples/randomness_beacon.py
"""

from repro import SystemConfig
from repro.adversary.behaviors import BiasedCoinBehavior
from repro.adversary.controller import Adversary
from repro.core.api import build_stack, make_coins

EPOCHS = 4


def main() -> None:
    config = SystemConfig(n=4, seed=7)
    adversary = Adversary({3: BiasedCoinBehavior()})  # tries to force 0s
    stack = build_stack(config, adversary=adversary)
    coins = make_coins(stack, "svss")

    print(f"beacon: n={config.n}, t={config.t}, epochs={EPOCHS}")
    print("party 3 deals all-zero secrets, trying to pin the beacon to 0")
    print()

    outputs_per_epoch = []
    for epoch in range(EPOCHS):
        csid = ("beacon", epoch)
        outputs: dict[int, int] = {}
        for pid in config.pids:
            coins[pid].join(csid)
            coins[pid].get(csid, lambda v, pid=pid: outputs.setdefault(pid, v))
            coins[pid].release(csid)
        honest = [p for p in config.pids if p != 3]
        stack.runtime.run_until(
            lambda: all(p in outputs for p in honest), max_events=30_000_000
        )
        values = {outputs[p] for p in honest}
        tag = "unanimous" if len(values) == 1 else f"split {values}"
        print(f"epoch {epoch}: honest outputs {outputs}  [{tag}]")
        outputs_per_epoch.append(values)

    bits = [next(iter(v)) for v in outputs_per_epoch if len(v) == 1]
    print()
    print(f"beacon stream (unanimous epochs): {bits}")
    print(f"messages simulated: {stack.trace.total_messages:,}")
    if 1 in bits:
        print("the biasing party failed to pin the beacon to 0, as the")
        print("hiding property guarantees: honest secrets stay uniform.")


if __name__ == "__main__":
    main()
