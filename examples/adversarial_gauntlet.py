#!/usr/bin/env python3
"""Adversarial gauntlet: agreement under every attack in the library.

Runs Byzantine agreement repeatedly, each time against a different
byzantine behaviour and an aggressive network schedule, and reports the
outcome.  Agreement and validity are safety properties: they must hold in
*every* run, not just on average.

The second half drives a slice of the *campaign engine*
(:mod:`repro.sim.campaign`): the same question asked systematically —
every adversary family x protocol-aware schedule x aggregation mode, with
the runtime invariant monitor armed on every run.

Run:  python examples/adversarial_gauntlet.py
"""

import random

from repro import SystemConfig, run_byzantine_agreement
from repro.adversary.behaviors import (
    ABALiarBehavior,
    CrashBehavior,
    MutatingBehavior,
    SilentBehavior,
)
from repro.adversary.controller import Adversary
from repro.adversary.schedulers import VoteBalancingScheduler
from repro.analysis.tables import render_table
from repro.sim.scheduler import ExponentialDelayScheduler

GAUNTLET = [
    ("no faults", lambda seed: None),
    ("crash after 50 msgs", lambda seed: Adversary({4: CrashBehavior(50)})),
    ("silent process", lambda seed: Adversary({2: SilentBehavior()})),
    (
        "message mutator (40%)",
        lambda seed: Adversary({3: MutatingBehavior(random.Random(seed), 0.4)}),
    ),
    (
        "agreement liar",
        lambda seed: Adversary({1: ABALiarBehavior(random.Random(seed))}),
    ),
]


def main() -> None:
    config_proto = SystemConfig(n=7, seed=0)
    print(
        f"gauntlet: n={config_proto.n}, t={config_proto.t}, split inputs, "
        "ideal common coin, hostile schedules"
    )
    rows = []
    for name, factory in GAUNTLET:
        for sched_name in ("exponential", "vote-balancing"):
            outcomes = []
            for seed in range(5):
                config = SystemConfig(n=7, seed=seed)
                scheduler = (
                    ExponentialDelayScheduler(config.derive_rng("g"), mean=3.0)
                    if sched_name == "exponential"
                    else VoteBalancingScheduler(config)
                )
                result = run_byzantine_agreement(
                    [0, 1, 0, 1, 0, 1, 0],
                    config,
                    coin=("ideal", 1.0),
                    adversary=factory(seed),
                    scheduler=scheduler,
                )
                assert result.terminated and result.agreed, (
                    f"SAFETY VIOLATION under {name}/{sched_name}"
                )
                outcomes.append(result.max_rounds)
            rows.append(
                [
                    name,
                    sched_name,
                    "5/5 agreed",
                    f"{min(outcomes)}-{max(outcomes)}",
                ]
            )
    print()
    print(
        render_table(
            "adversarial gauntlet (all runs must agree)",
            ["adversary", "schedule", "outcome", "rounds"],
            rows,
        )
    )

    # -- campaign slice: the systematic version of the loop above ----------
    from repro.sim.campaign import run_campaign

    print()
    print(
        "campaign slice: n=4, invariant monitor armed on every run "
        "(adaptive corruption, slot poisoning, crash-recovery, reveal "
        "eclipse)"
    )
    campaign = run_campaign(
        n=4,
        adversaries=("none", "adaptive-crash", "slot-poison", "crash-recover"),
        schedulers=("uniform", "vote-balancing", "eclipse"),
        modes=("plain", "coalesce+svec"),
        seeds=range(4),
        round_bound=80,
    )
    print()
    print(campaign.table("campaign slice (monitored; zero violations expected)"))
    assert campaign.ok, campaign.cell_violations()


if __name__ == "__main__":
    main()
