#!/usr/bin/env python3
"""Batched agreement: K concurrent instances multiplexed on one runtime.

Production deployments of these primitives never run one agreement at a
time — common-subset layers run ``n`` parallel instances per block, and
Wang-style batched BA gets its amortized complexity from sharing the
expensive machinery across a batch.  ``run_byzantine_agreement_batch``
does exactly that on this stack:

* every instance is an instance-scoped ``ProtocolModule`` demuxed through
  per-instance dispatch slots — no per-instance topics, no extra runtimes;
* the broadcast/VSS substrate is built once and shared;
* with ``share_coin=True`` (default) the whole batch consults **one**
  shunning-coin invocation per round.  With the paper's SVSS coin a single
  invocation costs Θ(n²) sharings and dominates a run, so the batch pays
  the coin bill once instead of K times;
* under a fixed-delay scheduler each instance's decisions are *identical*
  to the sequential solo run on the same seed (the batch is an
  order-preserving interleaving of the solo event streams).

Run:  python examples/batched_agreement.py
"""

import time

from repro.analysis.tables import render_table
from repro.config import SystemConfig
from repro.core.api import run_byzantine_agreement, run_byzantine_agreement_batch
from repro.sim.experiments import Scenario, run_scenario
from repro.sim.scheduler import FifoScheduler
from repro.sim.tracing import TRACE_COUNTS


def main() -> None:
    n, k, seed = 4, 8, 7
    inputs = [[(i + shift) % 2 for i in range(n)] for shift in range(k)]

    # -- the paper's full stack, batched: one shared SVSS coin per round --
    start = time.perf_counter()
    batch = run_byzantine_agreement_batch(
        inputs,
        SystemConfig(n=n, seed=seed),
        coin="svss",
        scheduler=FifoScheduler(),
        trace_level=TRACE_COUNTS,
    )
    batch_wall = time.perf_counter() - start
    assert batch.agreed and batch.terminated

    # -- the same K agreements as sequential solo stacks ------------------
    start = time.perf_counter()
    solo_events = 0
    for index, row in enumerate(inputs):
        solo = run_byzantine_agreement(
            row,
            SystemConfig(n=n, seed=seed),
            coin="svss",
            scheduler=FifoScheduler(),
            trace_level=TRACE_COUNTS,
        )
        solo_events += solo.events_dispatched
        # Fixed delays + shared round coin => bit-identical decisions.
        assert solo.decisions == batch.results[("aba", index)].decisions
    solo_wall = time.perf_counter() - start

    rows = [
        [
            repr(iid),
            "".join(map(str, inputs[i])),
            result.decision,
            result.max_rounds,
        ]
        for i, (iid, result) in enumerate(batch.results.items())
    ]
    print(
        render_table(
            f"K={k} concurrent agreements, n={n}, shared SVSS round coin",
            ["instance", "inputs", "decision", "rounds"],
            rows,
            note=(
                f"batch: {batch.events_dispatched:,} events in {batch_wall:.2f}s "
                f"vs {k} solo stacks: {solo_events:,} events in {solo_wall:.2f}s"
            ),
        )
    )
    print(
        f"amortization   : {solo_events / batch.events_dispatched:.1f}x fewer "
        f"events, {solo_wall / batch_wall:.1f}x faster wall-clock"
    )

    # -- the experiments axis: batch is just another scenario field -------
    record = run_scenario(Scenario(n=7, seed=3, scheduler="fifo", batch=8))
    print(
        f"experiments    : Scenario(batch=8) -> {record.decided_instances} "
        f"decisions, {record.rounds} max rounds, "
        f"{record.decisions_per_wall_second:,.0f} decisions/sec"
    )


if __name__ == "__main__":
    main()
