#!/usr/bin/env python3
"""Quickstart: run the paper's full protocol once and inspect the result.

Four processes (the minimal optimally-resilient system, n = 3t + 1 with
t = 1) run asynchronous Byzantine agreement over the complete stack:
Bracha-skeleton voting, SVSS-based shunning common coin, MW-SVSS, DMM,
reliable broadcast, and a randomly-delaying network.

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, run_byzantine_agreement


def main() -> None:
    config = SystemConfig(n=4, seed=42)
    inputs = [0, 1, 1, 0]  # one binary input per process

    print(f"running ABA: n={config.n}, t={config.t}, inputs={inputs}")
    print("coin: full SVSS shunning common coin (the paper's protocol)")
    result = run_byzantine_agreement(inputs, config, coin="svss")

    print()
    print(f"terminated : {result.terminated}")
    print(f"agreed     : {result.agreed}")
    print(f"decision   : {result.decision}")
    print(f"rounds     : {result.rounds}")
    print(f"messages   : {result.trace.total_messages:,}")
    print(f"sim time   : {result.sim_time:.1f} (simulated network delays)")
    print(f"shun pairs : {sorted(result.shun_pairs) or 'none (fault-free run)'}")

    assert result.agreed, "Theorem 1 says this cannot happen"
    print()
    print("every nonfaulty process decided the same value - Theorem 1 holds")


if __name__ == "__main__":
    main()
