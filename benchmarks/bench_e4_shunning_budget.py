"""E4 / Table 2 — the shunning budget (paper §5).

The whole termination argument rests on: every property-violating session
consumes at least one fresh (nonfaulty, faulty) shun pair, and there are at
most ``t * (n - t)`` such pairs.  This bench runs long sequences of
MW-SVSS sessions against persistently lying processes and measures

* total shun pairs (must stay <= t(n-t));
* culprit identity (Lemma 1(a): only faulty processes are ever convicted);
* self-healing: sessions after the budget is spent reconstruct cleanly.
"""

from __future__ import annotations

import random

from repro.adversary.behaviors import LyingReconstructorBehavior
from repro.adversary.controller import Adversary
from repro.analysis.tables import render_table
from repro.config import SystemConfig
from repro.core.api import build_stack
from repro.core.manager import CallbackWatcher
from repro.core.sessions import mw_session

SESSIONS = 12


def _run_campaign(n: int, seed: int, liars: list[int]):
    cfg = SystemConfig(n=n, seed=seed)
    adversary = Adversary(
        {liar: LyingReconstructorBehavior(random.Random(seed + liar)) for liar in liars}
    )
    stack = build_stack(cfg, adversary=adversary)
    nonfaulty = set(stack.nonfaulty())
    last_outputs = {}
    for c in range(SESSIONS):
        tag = ("e4", c)
        sid = mw_session(tag, 1, 2, "dm")
        completed, outputs = set(), {}
        for pid in cfg.pids:
            stack.vss[pid].register_watcher(
                tag,
                CallbackWatcher(
                    on_mw_share_complete=lambda s, pid=pid: completed.add(pid),
                    on_mw_output=lambda s, v, pid=pid: outputs.setdefault(pid, v),
                ),
            )
        stack.vss[1].mw_share(sid, c)
        stack.vss[2].mw_moderate(sid, c)
        stack.runtime.run_until(lambda: nonfaulty <= completed, max_events=20_000_000)
        for pid in cfg.pids:
            try:
                stack.vss[pid].mw_begin_reconstruct(sid)
            except Exception:
                continue
        stack.runtime.run_until(
            lambda: nonfaulty <= set(outputs), max_events=20_000_000
        )
        last_outputs = outputs
    return cfg, stack, nonfaulty, last_outputs


def test_e4_shunning_budget(benchmark, emit):
    def experiment():
        campaigns = []
        campaigns.append(("n=4, 1 liar", *_run_campaign(4, 1, [3])))
        campaigns.append(("n=7, 2 liars", *_run_campaign(7, 2, [3, 6])))
        return campaigns

    campaigns = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for label, cfg, stack, nonfaulty, last_outputs in campaigns:
        pairs = stack.trace.shun_pairs()
        budget = cfg.t * (cfg.n - cfg.t)
        liars = stack.adversary.corrupt_pids
        clean_last = all(
            last_outputs.get(p) == SESSIONS - 1 for p in nonfaulty
        )
        rows.append(
            [
                label,
                f"{SESSIONS} sessions",
                f"{len(pairs)} <= {budget}",
                "yes" if all(c in liars for _, c in pairs) else "NO",
                "yes" if clean_last else "NO",
            ]
        )
        assert len(pairs) <= budget
        assert all(culprit in liars for _, culprit in pairs)
        assert all(observer not in liars for observer, _ in pairs)
        assert clean_last
    emit(
        render_table(
            "E4 (Table 2): shunning budget under persistent liars",
            ["campaign", "workload", "shun pairs vs t(n-t)", "culprits faulty", "self-healed"],
            rows,
            note="expected shape: pairs bounded by t(n-t); only liars "
            "convicted; final session reconstructs its secret cleanly",
        )
    )
