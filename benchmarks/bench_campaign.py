"""Adversary campaign benchmark — emits ``BENCH_campaign.json``.

The robustness artifact: the full adversary-campaign matrix (see
:mod:`repro.sim.campaign`) with the invariant monitor armed on every run.
Two matrices are driven:

1. **Main matrix** (ideal coin, n = 4): every adversary family of the
   engine — static random, adaptive traffic-observing, slot-targeted
   vector poisoning, crash→recover→crash — against the protocol-aware
   schedules (vote balancing, coin-reveal eclipse, intermittent
   partition) across all four aggregation modes, 20 seeds per cell.
2. **SVSS sub-block** (real coin, n = 4): the aggregation-sensitive
   adversaries against the packing-vetoing ``slot-split`` schedule, a few
   seeds per cell — the slow cells that make the coin's transport claims
   checkable end to end.

Acceptance gates:

* zero :class:`~repro.sim.monitor.InvariantViolation` records across every
  honest-majority cell of both matrices (the paper's safety claims are
  unconditional, so one red cell is a bug, not noise);
* every cell decides every seed (agreement rate 1.0);
* the *negative* fixture — a liveness watchdog bound of 0 — does fire, so
  a clean sweep is evidence the monitor watched, not that it slept.

The JSON artifact is committed at the repo root so the robustness
trajectory is diffable across PRs, next to the other ``BENCH_*.json``.
"""

from __future__ import annotations

import os

from bench_common import bench_payload, write_bench_json
from repro.sim.campaign import CampaignResult, run_campaign
from repro.sim.experiments import Scenario, run_scenario

#: CI's campaign smoke job sets this to run the same matrices on fewer
#: seeds per cell; the gates (zero violations, rate 1.0, negative fixture)
#: are identical either way.
SMOKE = os.environ.get("REPRO_CAMPAIGN_SMOKE") == "1"
SEED_COUNT = 6 if SMOKE else 20
SVSS_SEED_COUNT = 2 if SMOKE else 3

MAIN_MATRIX = dict(
    n=4,
    adversaries=(
        "none",
        "random",
        "adaptive-crash",
        "slot-poison",
        "crash-recover",
    ),
    schedulers=("uniform", "vote-balancing", "eclipse", "partition"),
    modes=("plain", "coalesce", "svec", "coalesce+svec"),
    seeds=range(SEED_COUNT),
    coin=("ideal", 1.0),
    round_bound=80,
)

SVSS_MATRIX = dict(
    n=4,
    adversaries=("none", "random", "slot-poison", "crash-recover"),
    schedulers=("uniform", "slot-split"),
    modes=("plain", "coalesce+svec"),
    seeds=range(SVSS_SEED_COUNT),
    coin="svss",
    round_bound=250,
    max_rounds=300,
)


def _cell_rows(result: CampaignResult) -> list[dict]:
    rows = []
    for cell, sweep in result.cells.items():
        violations = [
            r.invariant_violation
            for r in sweep.records
            if r.invariant_violation is not None
        ]
        rows.append(
            {
                "adversary": cell.adversary,
                "scheduler": cell.scheduler,
                "aggregation": cell.aggregation,
                "runs": len(sweep),
                "agreement_rate": sweep.agreement_rate,
                "mean_rounds": sweep.summary("rounds").mean,
                "violations": violations,
                "coin_agreed": sum(r.coin_agreed for r in sweep.records),
                "coin_split": sum(r.coin_split for r in sweep.records),
                "shun_pairs": sum(r.shun_pairs for r in sweep.records),
            }
        )
    return rows


def _negative_fixture() -> dict:
    """Prove the monitor fires: an impossible liveness bound must violate."""
    record = run_scenario(
        Scenario(n=4, seed=0, inputs="split", monitor=True, round_bound=0)
    )
    assert record.invariant_violation is not None, (
        "negative fixture failed: round_bound=0 run produced no violation"
    )
    assert record.invariant_violation.startswith("[liveness]")
    assert not record.agreed
    return {
        "round_bound": 0,
        "violation": record.invariant_violation,
        "fired": True,
    }


def test_bench_campaign(emit):
    main = run_campaign(**MAIN_MATRIX)
    svss = run_campaign(**SVSS_MATRIX)
    negative = _negative_fixture()

    payload = bench_payload(
        {
            "n": 4,
            "smoke": SMOKE,
            "main_matrix": {
                k: (list(v) if isinstance(v, (tuple, range)) else v)
                for k, v in MAIN_MATRIX.items()
            },
            "svss_matrix": {
                k: (list(v) if isinstance(v, (tuple, range)) else v)
                for k, v in SVSS_MATRIX.items()
            },
            "gates": [
                "zero invariant violations across every cell of both "
                "matrices",
                "agreement rate 1.0 in every cell",
                "the negative liveness fixture fires",
            ],
        },
        main={
            "runs": len(main),
            "cells": _cell_rows(main),
            "ok": main.ok,
            "wall_seconds": main.wall_seconds,
            "workers": main.workers,
        },
        svss={
            "runs": len(svss),
            "cells": _cell_rows(svss),
            "ok": svss.ok,
            "wall_seconds": svss.wall_seconds,
            "workers": svss.workers,
        },
        negative_fixture=negative,
    )
    path = write_bench_json("campaign", payload)

    emit(main.table("Adversary campaign: ideal coin, n=4"))
    emit(svss.table("Adversary campaign: SVSS coin sub-block, n=4"))
    emit(
        f"negative fixture: {negative['violation']!r} (fired as required); "
        f"artifact: {path.name}"
    )

    # Gate 1: the paper's safety claims are unconditional — any violation
    # in an honest-majority cell is a protocol bug.
    assert main.ok, main.cell_violations()
    assert svss.ok, svss.cell_violations()
    # Gate 2: every seeded run in every cell decided.
    for result in (main, svss):
        for cell, sweep in result.cells.items():
            assert sweep.agreement_rate == 1.0, (cell, sweep.records)
    # Gate 3 already asserted inside the fixture; record it for the reader.
    assert negative["fired"]
    # Sanity: the matrices really were monitored end to end.
    assert all(r.monitored for r in main.records)
    assert all(r.monitored for r in svss.records)
