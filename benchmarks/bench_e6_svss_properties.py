"""E6 / Table 4 — SVSS property grid (paper §2.1, Lemma 3).

The same grid as E5 one level up: SVSS's binding is *strong* (honest
processes agree on one value r, with no per-process ⊥ escape hatch), so
the value column checks exact agreement.
"""

from __future__ import annotations

import random

from repro.adversary.behaviors import (
    CrashBehavior,
    EquivocatingDealerBehavior,
    LyingReconstructorBehavior,
    SilentBehavior,
)
from repro.adversary.controller import Adversary, no_adversary
from repro.analysis.tables import render_table
from repro.config import SystemConfig
from repro.core.api import run_svss

SECRET = 99
SEEDS = range(4)

ADVERSARIES = {
    "none": lambda seed: no_adversary(),
    "silent": lambda seed: Adversary({4: SilentBehavior()}),
    "crash mid-share": lambda seed: Adversary({2: CrashBehavior(after_messages=150)}),
    "lying reconstructor": lambda seed: Adversary(
        {3: LyingReconstructorBehavior(random.Random(seed))}
    ),
    "equivocating dealer": lambda seed: Adversary(
        {1: EquivocatingDealerBehavior(random.Random(seed))}
    ),
}


def _grid():
    rows = []
    for name, factory in ADVERSARIES.items():
        share_ok = recon_ok = bound = valid = unpunished = 0
        for seed in SEEDS:
            cfg = SystemConfig(n=4, seed=seed + 70)
            adversary = factory(seed)
            result, stack = run_svss(
                cfg, dealer=1, secret=SECRET, adversary=adversary
            )
            honest = [p for p in cfg.pids if p not in adversary.corrupt_pids]
            dealer_honest = 1 not in adversary.corrupt_pids
            share_ok += set(honest) <= result.share_completed
            recon_ok += set(honest) <= set(result.outputs)
            outs = {result.outputs.get(p) for p in honest} - {None}
            is_bound = len(outs) <= 1
            bound += is_bound
            if dealer_honest:
                is_valid = outs <= {SECRET}
                valid += is_valid
            else:
                is_valid = is_bound
            if not is_valid and not result.trace.shun_pairs():
                unpunished += 1
        rows.append(
            [name, f"{share_ok}/{len(SEEDS)}", f"{recon_ok}/{len(SEEDS)}",
             f"{bound}/{len(SEEDS)}", unpunished]
        )
    return rows


def test_e6_svss_properties(benchmark, emit):
    rows = benchmark.pedantic(_grid, rounds=1, iterations=1)
    emit(
        render_table(
            "E6 (Table 4): SVSS properties, n=4, adversary grid",
            [
                "adversary",
                "honest shares complete",
                "honest reconstruct",
                "binding (single r)",
                "violations w/o shun",
            ],
            rows,
            note="Lemma 3 shape: every violation of binding/validity is "
            "paid for with a fresh shun pair (last column all zero)",
        )
    )
    for row in rows:
        assert row[4] == 0, f"unpunished violation under {row[0]}"
