"""Algebra fast-path benchmark — emits ``BENCH_algebra.json``.

Measures the three layers the fast path touches, against the seed
implementations kept verbatim in this file:

1. **Interpolation micro**: cached barycentric interpolation vs the seed
   per-call Lagrange basis build, at the protocol's node sets
   ``{1..t+1}`` for ``n ∈ {4, 7, 10, 13}``.  Acceptance gate: ≥3×.
2. **Batch inversion micro**: Montgomery batch inversion vs one Fermat
   ``pow`` per element.
3. **End-to-end wall-clock**: one MW-SVSS share+reconstruct (algebra-heavy)
   and one full Byzantine agreement with the ideal coin (dispatch-heavy,
   exercises the no-op tracing level) at ``n ∈ {4, 7, 10, 13}``.
4. **Backend × n matrix**: the row-shaped fast paths —
   ``LagrangeBasis.interpolate_rows`` and ``evaluate_rows`` — timed under
   the ``pure`` vs ``numpy`` algebra backends (``repro.field.backend``) at
   the coin's aggregate decode shape: ``2n²`` rows (one batch-ingested
   slot-vector group per degree-``t`` row) over nodes ``{1..t+1}``,
   evaluated at ``n`` points.  Results are asserted bit-identical across
   backends.  Acceptance gate: numpy ≥3× pure on both kernels at n ≥ 10.

The JSON artifact is committed at the repo root so the perf trajectory is
diffable across PRs.
"""

from __future__ import annotations

import platform
import time
from random import Random

from bench_common import best_of, write_bench_json
from repro.analysis.tables import render_table
from repro.config import SystemConfig, max_faults
from repro.core.api import run_byzantine_agreement, run_mwsvss
from repro.field import available_backends, numpy_available, set_backend
from repro.field.gf import Field
from repro.poly.fastpath import (
    batch_inverse,
    evaluate_rows,
    interpolate_values,
    lagrange_basis,
)
from repro.poly.univariate import Polynomial
from repro.sim.tracing import TRACE_OFF

NS = (4, 7, 10, 13)
FIELD = Field()
INTERP_REPS = 400
INV_BATCH = 256
#: Backend-matrix sizes; the gate applies from BACKEND_GATE_N up.
BACKEND_NS = (4, 7, 10, 13, 16)
BACKEND_GATE_N = 10
BACKEND_GATE_SPEEDUP = 3.0
BACKEND_REPS = 20


def _seed_lagrange_interpolate(field, points):
    """The seed implementation (pre-fast-path), kept as the baseline.

    tests/test_fastpath.py carries the same reference as ``naive_lagrange``
    for its equivalence properties; keep the two in sync if either changes.
    """
    prime = field.prime
    result = Polynomial.zero(field)
    for i, (x_i, y_i) in enumerate(points):
        if y_i % prime == 0:
            continue
        basis = Polynomial.constant(field, 1)
        denom = 1
        for j, (x_j, _) in enumerate(points):
            if j == i:
                continue
            basis = basis * Polynomial(field, [(-x_j) % prime, 1])
            denom = (denom * (x_i - x_j)) % prime
        result = result + basis.scale(field.div(y_i, denom))
    return result


def _interpolation_micro() -> list[dict]:
    rng = Random(1)
    series = []
    for n in NS:
        t = max_faults(n)
        xs = list(range(1, t + 2))
        batches = [
            [rng.randrange(FIELD.prime) for _ in xs] for _ in range(INTERP_REPS)
        ]
        points = [list(zip(xs, ys)) for ys in batches]
        lagrange_basis(FIELD, xs)  # warm the cache, as protocol runs do

        def run_seed():
            for pts in points:
                _seed_lagrange_interpolate(FIELD, pts)

        def run_fast():
            for ys in batches:
                interpolate_values(FIELD, xs, ys)

        seed_s = best_of(run_seed, repeats=3)
        fast_s = best_of(run_fast, repeats=3)
        series.append(
            {
                "n": n,
                "t": t,
                "reps": INTERP_REPS,
                "seed_seconds": seed_s,
                "fastpath_seconds": fast_s,
                "speedup": seed_s / fast_s,
            }
        )
    return series


def _batch_inverse_micro() -> dict:
    rng = Random(2)
    values = [rng.randrange(1, FIELD.prime) for _ in range(INV_BATCH)]

    def run_seed():
        for v in values:
            FIELD.inv(v)

    def run_fast():
        batch_inverse(FIELD, values)

    seed_s = best_of(run_seed, repeats=5)
    fast_s = best_of(run_fast, repeats=5)
    return {
        "batch_size": INV_BATCH,
        "seed_seconds": seed_s,
        "fastpath_seconds": fast_s,
        "speedup": seed_s / fast_s,
    }


def _backend_matrix() -> list[dict]:
    """Row-kernel wall-clock per backend at the coin's decode shapes.

    One coin invocation batch-ingests ``n²`` slot-vector groups per step;
    each group decodes degree-``t`` rows over nodes ``{1..t+1}`` and
    re-evaluates at the ``n`` protocol points — so ``2n²`` rows is the
    realistic aggregate a step hands the row kernels.  Timings pin the
    backend with ``set_backend`` around each measurement; results are
    asserted identical so the matrix is also an equivalence check.
    """
    rng = Random(3)
    series = []
    for n in BACKEND_NS:
        t = max_faults(n)
        m = t + 1
        nodes = list(range(1, m + 1))
        k = 2 * n * n
        ys_rows = [
            [rng.randrange(FIELD.prime) for _ in range(m)] for _ in range(k)
        ]
        coeff_rows = [
            [rng.randrange(FIELD.prime) for _ in range(m)] for _ in range(k)
        ]
        xs = list(range(1, n + 1))
        basis = lagrange_basis(FIELD, nodes)  # warm, as protocol runs do
        row: dict = {"n": n, "t": t, "rows": k, "reps": BACKEND_REPS}
        results: dict[str, tuple] = {}
        for backend in available_backends():
            set_backend(backend)

            def run_interp():
                for _ in range(BACKEND_REPS):
                    basis.interpolate_rows(ys_rows)

            def run_eval():
                for _ in range(BACKEND_REPS):
                    evaluate_rows(FIELD, coeff_rows, xs)

            row[backend] = {
                "interpolate_rows_seconds": best_of(run_interp, repeats=3),
                "evaluate_rows_seconds": best_of(run_eval, repeats=3),
            }
            results[backend] = (
                basis.interpolate_rows(ys_rows),
                evaluate_rows(FIELD, coeff_rows, xs),
            )
        set_backend("pure")
        reference = results["pure"]
        assert all(r == reference for r in results.values()), (
            f"backend results diverge at n={n}"
        )
        row["results_identical"] = True
        if "numpy" in row:
            row["interpolate_speedup"] = (
                row["pure"]["interpolate_rows_seconds"]
                / row["numpy"]["interpolate_rows_seconds"]
            )
            row["evaluate_speedup"] = (
                row["pure"]["evaluate_rows_seconds"]
                / row["numpy"]["evaluate_rows_seconds"]
            )
        series.append(row)
    return series


def _end_to_end() -> list[dict]:
    series = []
    for n in NS:
        start = time.perf_counter()
        result, _ = run_mwsvss(
            SystemConfig(n=n, seed=5), dealer=1, moderator=2, secret=7,
            trace_level=TRACE_OFF,
        )
        mw_s = time.perf_counter() - start
        assert result.outputs, f"MW-SVSS at n={n} produced no outputs"

        inputs = [i % 2 for i in range(n)]
        start = time.perf_counter()
        aba = run_byzantine_agreement(
            inputs, SystemConfig(n=n, seed=5), coin=("ideal", 1.0),
            trace_level=TRACE_OFF,
        )
        aba_s = time.perf_counter() - start
        assert aba.agreed
        series.append(
            {
                "n": n,
                "mwsvss_seconds": mw_s,
                "agreement_ideal_coin_seconds": aba_s,
            }
        )
    return series


def test_bench_algebra(emit):
    interp = _interpolation_micro()
    inv = _batch_inverse_micro()
    backends = _backend_matrix()
    e2e = _end_to_end()
    payload = {
        "python": platform.python_version(),
        "prime": FIELD.prime,
        "interpolation": interp,
        "batch_inverse": inv,
        "backend_matrix": {
            "available": list(available_backends()),
            "gate": (
                f"numpy >= {BACKEND_GATE_SPEEDUP}x pure on interpolate_rows "
                f"and evaluate_rows at n >= {BACKEND_GATE_N}"
            ),
            "series": backends,
        },
        "end_to_end": e2e,
    }
    path = write_bench_json("algebra", payload)

    emit(
        render_table(
            "Algebra fast path: cached interpolation vs seed Lagrange",
            ["n", "t", "seed s", "fastpath s", "speedup"],
            [
                [
                    row["n"],
                    row["t"],
                    f"{row['seed_seconds']:.4f}",
                    f"{row['fastpath_seconds']:.4f}",
                    f"{row['speedup']:.1f}x",
                ]
                for row in interp
            ],
            note=f"{INTERP_REPS} interpolations per measurement; artifact: {path.name}",
        )
    )
    emit(
        render_table(
            "Batch inversion + end-to-end wall-clock",
            ["quantity", "value"],
            [
                [
                    f"batch inverse ({INV_BATCH} elems)",
                    f"{inv['speedup']:.1f}x vs per-element pow",
                ],
                *[
                    [
                        f"n={row['n']} mwsvss / aba(ideal)",
                        f"{row['mwsvss_seconds']:.3f}s / "
                        f"{row['agreement_ideal_coin_seconds']:.3f}s",
                    ]
                    for row in e2e
                ],
            ],
        )
    )
    if numpy_available():
        emit(
            render_table(
                "Algebra backend matrix: numpy vs pure row kernels",
                ["n", "rows", "interp pure s", "interp numpy s", "speedup",
                 "eval pure s", "eval numpy s", "speedup"],
                [
                    [
                        row["n"],
                        row["rows"],
                        f"{row['pure']['interpolate_rows_seconds']:.4f}",
                        f"{row['numpy']['interpolate_rows_seconds']:.4f}",
                        f"{row['interpolate_speedup']:.1f}x",
                        f"{row['pure']['evaluate_rows_seconds']:.4f}",
                        f"{row['numpy']['evaluate_rows_seconds']:.4f}",
                        f"{row['evaluate_speedup']:.1f}x",
                    ]
                    for row in backends
                ],
                note=(
                    f"2n² degree-t rows per call, {BACKEND_REPS} calls per "
                    "measurement; results bit-identical across backends"
                ),
            )
        )

    # The acceptance gate of PR 1: cached interpolation ≥3× the seed.
    assert all(row["speedup"] >= 3.0 for row in interp), interp
    # Backend equivalence always holds; the ≥3× numpy gate applies where
    # numpy is importable, at n ≥ BACKEND_GATE_N.
    assert all(row["results_identical"] for row in backends), backends
    if numpy_available():
        for row in backends:
            if row["n"] < BACKEND_GATE_N:
                continue
            assert row["interpolate_speedup"] >= BACKEND_GATE_SPEEDUP, row
            assert row["evaluate_speedup"] >= BACKEND_GATE_SPEEDUP, row
