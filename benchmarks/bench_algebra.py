"""Algebra fast-path benchmark — emits ``BENCH_algebra.json``.

Measures the three layers the fast path touches, against the seed
implementations kept verbatim in this file:

1. **Interpolation micro**: cached barycentric interpolation vs the seed
   per-call Lagrange basis build, at the protocol's node sets
   ``{1..t+1}`` for ``n ∈ {4, 7, 10, 13}``.  Acceptance gate: ≥3×.
2. **Batch inversion micro**: Montgomery batch inversion vs one Fermat
   ``pow`` per element.
3. **End-to-end wall-clock**: one MW-SVSS share+reconstruct (algebra-heavy)
   and one full Byzantine agreement with the ideal coin (dispatch-heavy,
   exercises the no-op tracing level) at ``n ∈ {4, 7, 10, 13}``.

The JSON artifact is committed at the repo root so the perf trajectory is
diffable across PRs.
"""

from __future__ import annotations

import platform
import time
from random import Random

from bench_common import best_of, write_bench_json
from repro.analysis.tables import render_table
from repro.config import SystemConfig, max_faults
from repro.core.api import run_byzantine_agreement, run_mwsvss
from repro.field.gf import Field
from repro.poly.fastpath import batch_inverse, interpolate_values, lagrange_basis
from repro.poly.univariate import Polynomial
from repro.sim.tracing import TRACE_OFF

NS = (4, 7, 10, 13)
FIELD = Field()
INTERP_REPS = 400
INV_BATCH = 256


def _seed_lagrange_interpolate(field, points):
    """The seed implementation (pre-fast-path), kept as the baseline.

    tests/test_fastpath.py carries the same reference as ``naive_lagrange``
    for its equivalence properties; keep the two in sync if either changes.
    """
    prime = field.prime
    result = Polynomial.zero(field)
    for i, (x_i, y_i) in enumerate(points):
        if y_i % prime == 0:
            continue
        basis = Polynomial.constant(field, 1)
        denom = 1
        for j, (x_j, _) in enumerate(points):
            if j == i:
                continue
            basis = basis * Polynomial(field, [(-x_j) % prime, 1])
            denom = (denom * (x_i - x_j)) % prime
        result = result + basis.scale(field.div(y_i, denom))
    return result


def _interpolation_micro() -> list[dict]:
    rng = Random(1)
    series = []
    for n in NS:
        t = max_faults(n)
        xs = list(range(1, t + 2))
        batches = [
            [rng.randrange(FIELD.prime) for _ in xs] for _ in range(INTERP_REPS)
        ]
        points = [list(zip(xs, ys)) for ys in batches]
        lagrange_basis(FIELD, xs)  # warm the cache, as protocol runs do

        def run_seed():
            for pts in points:
                _seed_lagrange_interpolate(FIELD, pts)

        def run_fast():
            for ys in batches:
                interpolate_values(FIELD, xs, ys)

        seed_s = best_of(run_seed, repeats=3)
        fast_s = best_of(run_fast, repeats=3)
        series.append(
            {
                "n": n,
                "t": t,
                "reps": INTERP_REPS,
                "seed_seconds": seed_s,
                "fastpath_seconds": fast_s,
                "speedup": seed_s / fast_s,
            }
        )
    return series


def _batch_inverse_micro() -> dict:
    rng = Random(2)
    values = [rng.randrange(1, FIELD.prime) for _ in range(INV_BATCH)]

    def run_seed():
        for v in values:
            FIELD.inv(v)

    def run_fast():
        batch_inverse(FIELD, values)

    seed_s = best_of(run_seed, repeats=5)
    fast_s = best_of(run_fast, repeats=5)
    return {
        "batch_size": INV_BATCH,
        "seed_seconds": seed_s,
        "fastpath_seconds": fast_s,
        "speedup": seed_s / fast_s,
    }


def _end_to_end() -> list[dict]:
    series = []
    for n in NS:
        start = time.perf_counter()
        result, _ = run_mwsvss(
            SystemConfig(n=n, seed=5), dealer=1, moderator=2, secret=7,
            trace_level=TRACE_OFF,
        )
        mw_s = time.perf_counter() - start
        assert result.outputs, f"MW-SVSS at n={n} produced no outputs"

        inputs = [i % 2 for i in range(n)]
        start = time.perf_counter()
        aba = run_byzantine_agreement(
            inputs, SystemConfig(n=n, seed=5), coin=("ideal", 1.0),
            trace_level=TRACE_OFF,
        )
        aba_s = time.perf_counter() - start
        assert aba.agreed
        series.append(
            {
                "n": n,
                "mwsvss_seconds": mw_s,
                "agreement_ideal_coin_seconds": aba_s,
            }
        )
    return series


def test_bench_algebra(emit):
    interp = _interpolation_micro()
    inv = _batch_inverse_micro()
    e2e = _end_to_end()
    payload = {
        "python": platform.python_version(),
        "prime": FIELD.prime,
        "interpolation": interp,
        "batch_inverse": inv,
        "end_to_end": e2e,
    }
    path = write_bench_json("algebra", payload)

    emit(
        render_table(
            "Algebra fast path: cached interpolation vs seed Lagrange",
            ["n", "t", "seed s", "fastpath s", "speedup"],
            [
                [
                    row["n"],
                    row["t"],
                    f"{row['seed_seconds']:.4f}",
                    f"{row['fastpath_seconds']:.4f}",
                    f"{row['speedup']:.1f}x",
                ]
                for row in interp
            ],
            note=f"{INTERP_REPS} interpolations per measurement; artifact: {path.name}",
        )
    )
    emit(
        render_table(
            "Batch inversion + end-to-end wall-clock",
            ["quantity", "value"],
            [
                [
                    f"batch inverse ({INV_BATCH} elems)",
                    f"{inv['speedup']:.1f}x vs per-element pow",
                ],
                *[
                    [
                        f"n={row['n']} mwsvss / aba(ideal)",
                        f"{row['mwsvss_seconds']:.3f}s / "
                        f"{row['agreement_ideal_coin_seconds']:.3f}s",
                    ]
                    for row in e2e
                ],
            ],
        )
    )
    # The acceptance gate of this PR: cached interpolation ≥3× the seed.
    assert all(row["speedup"] >= 3.0 for row in interp), interp
