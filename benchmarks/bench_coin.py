"""SVSS common-coin benchmark — emits ``BENCH_coin.json``.

Measures the wire-level coalescing layer on its natural worst case: one
shunning-common-coin invocation runs n² concurrent MW-SVSS sessions whose
echo/ack/confirm traffic crosses the same (src, dst) pairs within the same
protocol steps, so uncoalesced it dominates a full agreement run's event
bill (~97% post-PR-3).  For ``n ∈ {4, 5, 7}`` this times one complete
invocation (share + reveal, unit-delay FIFO network, ``TRACE_OFF``) with
coalescing off and on and records:

1. **Events per invocation** — dispatched events, wire pushes, envelope
   counts.  Acceptance gate: ≥2× fewer dispatched events at ``n = 7``
   with coalescing on (measured headroom is >60×: a coin step's per-pair
   session traffic collapses to one envelope).
2. **Wall-clock per invocation** — single-shot seconds (the event counts
   are deterministic; wall-clock is recorded for the trajectory, not
   gated, since the logical per-message handler work still dominates).
3. **Equivalence** — the coin outputs of every process must be identical
   off vs on (the coalescer is a pure event-count optimization under
   fixed-delay schedulers).

``n = 10`` is deliberately absent: the *uncoalesced* baseline exceeds the
runtime's 50M-event livelock guard (the coin's logical message bill grows
as ~n⁴ sharings × echo rounds), which is the problem this layer attacks —
coalesced, the n = 10 invocation dispatches ~850k events for its ~105M
logical messages, but a CI-budget benchmark cannot time the off side.

The JSON artifact is committed at the repo root so the perf trajectory is
diffable across PRs, next to the other ``BENCH_*.json`` files.
"""

from __future__ import annotations

import time

from bench_common import bench_payload, fast_coin_flip, write_bench_json
from repro.analysis.tables import render_table

NS = (4, 5, 7)
SEED = 5
GATE_N = 7
GATE_EVENTS_REDUCTION = 2.0


def _timed_flip(n: int, coalesce: bool) -> tuple[float, object]:
    start = time.perf_counter()
    result = fast_coin_flip(n, SEED, coalesce=coalesce)
    return time.perf_counter() - start, result


def _series() -> list[dict]:
    rows = []
    for n in NS:
        row: dict = {"n": n}
        outputs = {}
        for mode, coalesce in (("off", False), ("on", True)):
            seconds, result = _timed_flip(n, coalesce)
            outputs[mode] = dict(result.outputs)
            row[mode] = {
                "seconds": seconds,
                "events_dispatched": result.events_dispatched,
                "messages_pushed": result.messages_pushed,
                "envelopes_pushed": result.envelopes_pushed,
                "payloads_coalesced": result.payloads_coalesced,
                "events_per_sec": result.events_dispatched / seconds,
            }
        # Pure optimization: same coin bits at every process, either way.
        assert outputs["on"] == outputs["off"], row
        row["outputs_identical"] = True
        row["events_reduction"] = (
            row["off"]["events_dispatched"] / row["on"]["events_dispatched"]
        )
        row["wall_clock_speedup"] = row["off"]["seconds"] / row["on"]["seconds"]
        rows.append(row)
    return rows


def test_bench_coin(emit):
    series = _series()
    payload = bench_payload(
        {
            "ns": list(NS),
            "scheduler": "FifoScheduler",
            "trace_level": "TRACE_OFF",
            "seed": SEED,
            "gate": f">= {GATE_EVENTS_REDUCTION}x fewer events at n={GATE_N}",
        },
        invocations=series,
    )
    path = write_bench_json("coin", payload)

    emit(
        render_table(
            "SVSS common coin: one invocation, coalescing off vs on",
            ["n", "events off", "events on", "reduction", "envelopes",
             "s off", "s on", "speedup"],
            [
                [
                    row["n"],
                    f"{row['off']['events_dispatched']:,}",
                    f"{row['on']['events_dispatched']:,}",
                    f"{row['events_reduction']:.1f}x",
                    f"{row['on']['envelopes_pushed']:,}",
                    f"{row['off']['seconds']:.2f}",
                    f"{row['on']['seconds']:.2f}",
                    f"{row['wall_clock_speedup']:.2f}x",
                ]
                for row in series
            ],
            note=(
                "full share+reveal, unit-delay FIFO, TRACE_OFF; outputs "
                f"identical off vs on at every n; artifact: {path.name}"
            ),
        )
    )

    # Acceptance gate of this PR: >= 2x fewer dispatched events per coin
    # invocation at n = 7 with coalescing on.
    gate_row = next(row for row in series if row["n"] == GATE_N)
    assert gate_row["events_reduction"] >= GATE_EVENTS_REDUCTION, gate_row
    for row in series:
        assert row["outputs_identical"], row
        # Envelopes must actually carry the traffic (not a degenerate win).
        assert row["on"]["payloads_coalesced"] > row["on"]["envelopes_pushed"] > 0
