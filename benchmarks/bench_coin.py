"""SVSS common-coin benchmark — emits ``BENCH_coin.json``.

Measures the two transport layers on their natural worst case: one
shunning-common-coin invocation runs n² concurrent per-slot MW-SVSS
sessions whose echo/ack/confirm traffic crosses the same (src, dst) pairs
within the same protocol steps.  PR 4's wire coalescing collapsed the
*event* bill (one envelope per pair per step); PR 5's session-vector
aggregation collapses the *logical message* bill itself (one
``("svec", ...)`` message per (step, dealer-group) instead of n
per-session messages, ~n⁴ → ~n³).  For ``n ∈ {4, 5, 7}`` this times one
complete invocation (share + reveal, unit-delay FIFO network,
``TRACE_OFF``) across the full ``svec on/off × coalesce on/off`` matrix
and records, per mode:

1. **Logical messages** — via ``bench_common.logical_messages`` (envelope
   framing removed; a slot-vector counts as one).  Acceptance gate:
   ≥4× fewer logical messages at ``n = 7`` with svec on (measured: ~n× =
   7.0×).
2. **Events per invocation** — the PR-4 gate stays: ≥2× fewer dispatched
   events at ``n = 7`` with coalescing on (measured >60×).
3. **Wall-clock per invocation** — single-shot seconds, recorded for the
   trajectory.  Acceptance gate: the n=7 svec+coalesce invocation
   finishes in under 10s (was ~17s before batched ingestion).
4. **DMM verdict calls per invocation** — the per-slot-handler-work
   metric of batched ingestion: grouping a slot-vector's sibling
   sessions behind one group-level ``filter_verdict`` probe replaces n
   per-slot calls with one (plus per-slot fallbacks only on
   divergence).  The ``svec_coalesce_unbatched`` mode re-runs the
   aggregated transport with ``batch_ingest=False`` so the A/B is
   measured inside one artifact.  Acceptance gate: ≥3× fewer verdict
   calls at ``n = 7`` with batching on.
5. **Equivalence** — the coin outputs of every process must be identical
   across all modes, including batched vs unbatched ingestion (both
   transports and both ingestion paths are output-pure under
   fixed-delay schedulers).

``n = 10`` runs the svec modes only and is gated on *finishing*: its
uncoalesced per-session baseline exceeds the runtime's 50M-event livelock
guard (the problem this layer attacks), and even enveloped its ~105M
logical messages are outside a CI budget — aggregated, the same
invocation is ~10.5M logical messages on ~850k coalesced events and
completes in minutes.

Every mode pins ``algebra_backend="pure"`` so the transport trajectory
stays backend-stable; the ``svec_coalesce_numpy`` mode re-runs the full
aggregation stack on the vectorized algebra backend
(``repro.field.backend``) and is asserted bit-identical.  ``n = 16`` is
the backend PR's headline: the first finite invocation at that size —
``svec+coalesce+batch_ingest`` under both backends, gated on finishing
under the event guard with identical outputs (skipped, like the numpy
mode, when numpy is not importable).

The JSON artifact is committed at the repo root so the perf trajectory is
diffable across PRs, next to the other ``BENCH_*.json`` files.
"""

from __future__ import annotations

import gc
import time

from bench_common import (
    bench_payload,
    fast_coin_flip,
    logical_messages,
    write_bench_json,
)
from repro.analysis.tables import render_table
from repro.field import numpy_available
from repro.sim.runtime import DEFAULT_MAX_EVENTS

NS = (4, 5, 7)
N_LARGE = 10
N_XL = 16
SEED = 5
GATE_N = 7
GATE_EVENTS_REDUCTION = 2.0  # coalesce gate (PR 4)
GATE_LOGICAL_REDUCTION = 4.0  # svec gate (PR 5)
GATE_VERDICT_REDUCTION = 3.0  # batched-ingestion gate (PR 8)
GATE_SECONDS = 10.0  # n=7 svec+coalesce wall-clock gate (PR 8)

#: mode name -> fast_coin_flip kwargs; the svec on/off × coalesce on/off
#: matrix, plus the batched-ingestion A/B on the aggregated transport
#: (svec modes default to batched; ``_unbatched`` pins the per-slot
#: path).  At N_LARGE only the aggregated modes are feasible.
#: Declaration order is measurement order: the aggregated modes run
#: FIRST at each n so the wall-clock gate isn't poisoned by the heap a
#: preceding per-session n=7 run leaves behind (allocator fragmentation
#: after a ~9M-logical-message run costs the next run ~2×).
MODES = {
    "svec_coalesce": {
        "svec": True,
        "coalesce": True,
        "batch_ingest": True,
        "algebra_backend": "pure",
    },
    "svec_coalesce_numpy": {
        "svec": True,
        "coalesce": True,
        "batch_ingest": True,
        "algebra_backend": "numpy",
    },
    "svec_coalesce_unbatched": {
        "svec": True,
        "coalesce": True,
        "batch_ingest": False,
        "algebra_backend": "pure",
    },
    "svec": {"svec": True, "batch_ingest": True, "algebra_backend": "pure"},
    "coalesce": {"coalesce": True, "algebra_backend": "pure"},
    "plain": {"algebra_backend": "pure"},
}
LARGE_MODES = ("svec", "svec_coalesce", "svec_coalesce_numpy")
#: n = 16: the aggregated+vectorized frontier, both backends A/B'd.
XL_MODES = ("svec_coalesce", "svec_coalesce_numpy")


def _active_modes() -> dict[str, dict]:
    """The mode matrix, minus numpy modes when numpy is absent."""
    if numpy_available():
        return MODES
    return {k: v for k, v in MODES.items() if v.get("algebra_backend") != "numpy"}


def _measure(n: int, mode: str) -> tuple[dict, dict]:
    # Start every mode from a collected heap so timings are per-mode,
    # not a function of what the previous invocation left uncollected.
    gc.collect()
    start = time.perf_counter()
    result = fast_coin_flip(n, SEED, **MODES[mode])
    seconds = time.perf_counter() - start
    record = {
        "seconds": seconds,
        "events_dispatched": result.events_dispatched,
        "messages_pushed": result.messages_pushed,
        "logical_messages": logical_messages(result),
        "envelopes_pushed": result.envelopes_pushed,
        "payloads_coalesced": result.payloads_coalesced,
        "svec_packed": result.svec_packed,
        "svec_slots": result.svec_slots,
        "svec_batch_ingested": result.svec_batch_ingested,
        "dmm_verdicts_batched": result.dmm_verdicts_batched,
        "dmm_verdict_fallbacks": result.dmm_verdict_fallbacks,
        "dmm_verdict_calls": result.dmm_verdict_calls,
        "algebra_backend": result.algebra_backend,
        "rows_vectorized": result.rows_vectorized,
        "backend_fallbacks": result.backend_fallbacks,
    }
    return record, dict(result.outputs)


def _series() -> list[dict]:
    rows = []
    for n in NS:
        row: dict = {"n": n}
        outputs: dict[str, dict] = {}
        for mode in _active_modes():
            row[mode], outputs[mode] = _measure(n, mode)
        # Both transports are output-pure: same coin bits in every mode.
        assert all(out == outputs["plain"] for out in outputs.values()), row
        row["outputs_identical"] = True
        row["events_reduction"] = (
            row["plain"]["events_dispatched"]
            / row["coalesce"]["events_dispatched"]
        )
        row["logical_reduction"] = (
            row["plain"]["logical_messages"] / row["svec"]["logical_messages"]
        )
        row["wall_clock_speedup"] = (
            row["plain"]["seconds"] / row["svec_coalesce"]["seconds"]
        )
        row["verdict_calls_reduction"] = (
            row["svec_coalesce_unbatched"]["dmm_verdict_calls"]
            / row["svec_coalesce"]["dmm_verdict_calls"]
        )
        rows.append(row)
    return rows


def _large_row() -> dict:
    """The n = 10 coin, aggregated modes only (see the module docstring)."""
    row: dict = {
        "n": N_LARGE,
        "plain": "infeasible: uncoalesced baseline exceeds the 50M-event "
        "livelock guard",
        "coalesce": "infeasible in CI budget: ~105M logical messages still "
        "traverse their handlers",
    }
    outputs: dict[str, dict] = {}
    modes = [m for m in LARGE_MODES if m in _active_modes()]
    for mode in modes:
        row[mode], outputs[mode] = _measure(N_LARGE, mode)
        assert row[mode]["events_dispatched"] < DEFAULT_MAX_EVENTS, row
    assert all(out == outputs["svec"] for out in outputs.values()), row
    row["outputs_identical"] = True
    return row


def _xl_row() -> dict | None:
    """The first finite n = 16 coin: aggregated transport, both backends.

    Returns None without numpy — the A/B (and the wall-clock budget this
    row exists to demonstrate) needs the vectorized backend present.
    """
    if not numpy_available():
        return None
    row: dict = {
        "n": N_XL,
        "plain": "infeasible: uncoalesced baseline exceeds the 50M-event "
        "livelock guard",
    }
    outputs: dict[str, dict] = {}
    for mode in XL_MODES:
        row[mode], outputs[mode] = _measure(N_XL, mode)
        assert row[mode]["events_dispatched"] < DEFAULT_MAX_EVENTS, row
    # Bit-identical across backends: the vectorized algebra changes
    # wall-clock and the rows_vectorized counter, never a coin bit.
    assert outputs["svec_coalesce"] == outputs["svec_coalesce_numpy"], row
    assert row["svec_coalesce_numpy"]["rows_vectorized"] > 0, row
    row["outputs_identical"] = True
    return row


def test_bench_coin(emit):
    series = _series()
    large = _large_row()
    xl = _xl_row()
    payload = bench_payload(
        {
            "ns": [*NS, N_LARGE] + ([N_XL] if xl else []),
            "scheduler": "FifoScheduler",
            "trace_level": "TRACE_OFF",
            "seed": SEED,
            "modes": {name: dict(kw) for name, kw in _active_modes().items()},
            "gates": [
                f">= {GATE_LOGICAL_REDUCTION}x fewer logical messages at "
                f"n={GATE_N} with svec on",
                f">= {GATE_EVENTS_REDUCTION}x fewer events at n={GATE_N} "
                "with coalescing on",
                f">= {GATE_VERDICT_REDUCTION}x fewer DMM verdict calls at "
                f"n={GATE_N} with batched ingestion on",
                f"n={GATE_N} svec+coalesce invocation under "
                f"{GATE_SECONDS:.0f}s wall-clock",
                f"n={N_LARGE} aggregated run finishes under the "
                f"{DEFAULT_MAX_EVENTS // 10**6}M-event guard",
                "coin outputs bit-identical pure vs numpy at every "
                "benched n (numpy present)",
                f"n={N_XL} svec+coalesce+batch_ingest invocation finite "
                "on both backends (numpy present)",
            ],
        },
        invocations=[*series, large] + ([xl] if xl else []),
    )
    path = write_bench_json("coin", payload)

    table_rows = [
        [
            row["n"],
            f"{row['plain']['logical_messages']:,}",
            f"{row['svec']['logical_messages']:,}",
            f"{row['logical_reduction']:.1f}x",
            f"{row['svec_coalesce']['events_dispatched']:,}",
            f"{row['svec_coalesce_unbatched']['dmm_verdict_calls']:,}",
            f"{row['svec_coalesce']['dmm_verdict_calls']:,}",
            f"{row['verdict_calls_reduction']:.1f}x",
            f"{row['plain']['seconds']:.2f}",
            f"{row['svec_coalesce']['seconds']:.2f}",
            f"{row['wall_clock_speedup']:.2f}x",
        ]
        for row in series
    ]
    table_rows.append(
        [
            large["n"],
            "> 50M events",
            f"{large['svec']['logical_messages']:,}",
            "-",
            f"{large['svec_coalesce']['events_dispatched']:,}",
            "-",
            f"{large['svec_coalesce']['dmm_verdict_calls']:,}",
            "-",
            "-",
            f"{large['svec_coalesce']['seconds']:.2f}",
            "-",
        ]
    )
    if xl:
        table_rows.append(
            [
                xl["n"],
                "> 50M events",
                f"{xl['svec_coalesce']['logical_messages']:,}",
                "-",
                f"{xl['svec_coalesce']['events_dispatched']:,}",
                "-",
                f"{xl['svec_coalesce']['dmm_verdict_calls']:,}",
                "-",
                f"{xl['svec_coalesce']['seconds']:.2f}",
                f"{xl['svec_coalesce_numpy']['seconds']:.2f}",
                "-",
            ]
        )
    emit(
        render_table(
            "SVSS common coin: svec/coalesce/batch-ingest matrix",
            ["n", "logical plain", "logical svec", "reduction",
             "events svec+coal", "verdicts unbatched", "verdicts batched",
             "verdict redux", "s plain", "s svec+coal", "speedup"],
            table_rows,
            note=(
                "full share+reveal, unit-delay FIFO, TRACE_OFF; outputs "
                "identical across modes (incl. pure vs numpy algebra) at "
                f"every n; n={N_XL} row shows pure / numpy seconds; "
                f"artifact: {path.name}"
            ),
        )
    )

    # Acceptance gates of PR 8 (batched ingestion), PR 5 (svec), PR 4
    # (coalesce).
    gate_row = next(row for row in series if row["n"] == GATE_N)
    assert gate_row["logical_reduction"] >= GATE_LOGICAL_REDUCTION, gate_row
    assert gate_row["events_reduction"] >= GATE_EVENTS_REDUCTION, gate_row
    assert gate_row["verdict_calls_reduction"] >= GATE_VERDICT_REDUCTION, (
        gate_row
    )
    assert gate_row["svec_coalesce"]["seconds"] < GATE_SECONDS, gate_row
    for row in series:
        assert row["outputs_identical"], row
        # Both layers must actually carry traffic (not degenerate wins).
        assert row["svec"]["svec_slots"] > row["svec"]["svec_packed"] > 0
        assert (
            row["coalesce"]["payloads_coalesced"]
            > row["coalesce"]["envelopes_pushed"]
            > 0
        )
        # The batched path must actually engage — and the pinned-off mode
        # must stay on the per-slot path (the A/B is real).
        assert row["svec_coalesce"]["svec_batch_ingested"] > 0
        assert row["svec_coalesce"]["dmm_verdicts_batched"] > 0
        assert row["svec_coalesce_unbatched"]["svec_batch_ingested"] == 0
        # The vectorized backend must actually engage where present (the
        # outputs_identical assertion above already proved it harmless).
        if "svec_coalesce_numpy" in row:
            assert row["svec_coalesce_numpy"]["rows_vectorized"] > 0, row
            assert row["svec_coalesce"]["rows_vectorized"] == 0, row
    # The headline structural claim: the n = 10 coin is routinely benchable.
    assert large["outputs_identical"]
    assert large["svec_coalesce"]["events_dispatched"] < DEFAULT_MAX_EVENTS
    # The backend PR's headline: a finite n = 16 invocation, bit-identical
    # across backends (asserted inside _xl_row).
    if xl:
        assert xl["outputs_identical"]
        for mode in XL_MODES:
            assert xl[mode]["events_dispatched"] < DEFAULT_MAX_EVENTS
