"""Shared fixtures for the experiment benchmarks.

Every benchmark prints its experiment table live (past pytest's capture)
and appends it to ``benchmarks/results/`` so EXPERIMENTS.md can cite a
stable artifact.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit(capsys, request):
    """Print experiment output live and persist it per-test."""
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / f"{request.node.name}.txt"
    collected: list[str] = []

    def _emit(text: str) -> None:
        collected.append(text)
        with capsys.disabled():
            print(text)

    yield _emit
    if collected:
        out_path.write_text("\n".join(collected) + "\n")
