"""Simulation-engine benchmark — emits ``BENCH_engine.json``.

Measures the dispatch-core overhaul end to end against the seed engine,
which is kept alive behind ``engine="legacy"`` (binary heap, per-event
``ProcessHost.deliver`` routing, per-event predicate polling):

1. **End-to-end events/sec**: full Byzantine agreement runs (ideal coin,
   unit-delay network, ``TRACE_OFF``) at ``n ∈ {4, 7, 10, 13}``, legacy vs
   flat.  Acceptance gate: ≥2× events/sec at ``n = 10``.
2. **Wait discipline**: ``run_until`` predicate evaluations per run — the
   legacy engine polls O(events), the flat engine re-evaluates only on
   notified state changes.
3. **Queue micro**: push+pop throughput of the binary heap vs the bucketed
   calendar queue under the unit-delay timestamp distribution (a handful
   of live timestamps shared by thousands of events).

The JSON artifact is committed at the repo root so the perf trajectory is
diffable across PRs, next to ``BENCH_algebra.json``.
"""

from __future__ import annotations

from bench_common import bench_payload, best_of, fast_agreement, write_bench_json
from repro.analysis.tables import render_table
from repro.sim.events import BucketQueue, EventQueue

NS = (4, 7, 10, 13)
SEED = 7
QUEUE_EVENTS = 200_000
QUEUE_FANOUT = 10  # events per (time, src) batch, mirroring send_all at n=10
QUEUE_BATCHES = 20  # concurrent fan-outs sharing one timestamp


def _one_agreement(n: int, engine: str):
    return fast_agreement(n, SEED, ("ideal", 1.0), engine=engine)


def _agreement_series() -> list[dict]:
    series = []
    for n in NS:
        row = {"n": n}
        for engine in ("legacy", "flat"):
            result = _one_agreement(n, engine)  # warm + capture counters
            # best-of-5 keeps the CI gate below robust against runner noise
            # (observed headroom is ~60% over the 2x threshold).
            seconds = best_of(lambda: _one_agreement(n, engine), repeats=5)
            row[engine] = {
                "seconds": seconds,
                "events_dispatched": result.events_dispatched,
                "messages_pushed": result.messages_pushed,
                "predicate_evals": result.predicate_evals,
                "events_per_sec": result.events_dispatched / seconds,
            }
        # Same seed, same scheduler: the engines must have dispatched the
        # same stream, or the speedup below compares different work.
        assert (
            row["legacy"]["events_dispatched"] == row["flat"]["events_dispatched"]
        ), row
        row["speedup"] = (
            row["flat"]["events_per_sec"] / row["legacy"]["events_per_sec"]
        )
        series.append(row)
    return series


def _queue_micro() -> dict:
    """Heap vs calendar queue on the unit-delay timestamp distribution."""

    per_step = QUEUE_FANOUT * QUEUE_BATCHES

    def drive(queue) -> None:
        # Steady state of a unit-delay agreement run: every process'
        # fan-outs of one step share a timestamp, so each "tick" pops a
        # couple hundred same-time events and pushes as many at now + 1.
        pushed = per_step
        for _ in range(QUEUE_BATCHES):
            queue.push_fanout(1.0, 1, ("m",), QUEUE_FANOUT)
        while pushed < QUEUE_EVENTS:
            now = queue.pop()[0]
            for _ in range(per_step - 1):
                queue.pop()
            for _ in range(QUEUE_BATCHES):
                queue.push_fanout(now + 1.0, 1, ("m",), QUEUE_FANOUT)
            pushed += per_step
        while queue:
            queue.pop()

    heap_s = best_of(lambda: drive(EventQueue()), repeats=3)
    bucket_s = best_of(lambda: drive(BucketQueue()), repeats=3)
    return {
        "events": QUEUE_EVENTS,
        "fanout": QUEUE_FANOUT,
        "batches_per_step": QUEUE_BATCHES,
        "heap_seconds": heap_s,
        "bucket_seconds": bucket_s,
        "heap_events_per_sec": QUEUE_EVENTS / heap_s,
        "bucket_events_per_sec": QUEUE_EVENTS / bucket_s,
        "speedup": heap_s / bucket_s,
    }


def test_bench_engine(emit):
    agreement = _agreement_series()
    queue = _queue_micro()
    payload = bench_payload(
        {
            "coin": "ideal(1.0)",
            "scheduler": "FifoScheduler",
            "trace_level": "TRACE_OFF",
            "seed": SEED,
        },
        agreement=agreement,
        queue_micro=queue,
    )
    path = write_bench_json("engine", payload)

    emit(
        render_table(
            "Engine overhaul: agreement events/sec, legacy vs flat dispatch",
            ["n", "events", "legacy ev/s", "flat ev/s", "speedup",
             "evals legacy", "evals flat"],
            [
                [
                    row["n"],
                    row["flat"]["events_dispatched"],
                    f"{row['legacy']['events_per_sec']:,.0f}",
                    f"{row['flat']['events_per_sec']:,.0f}",
                    f"{row['speedup']:.2f}x",
                    row["legacy"]["predicate_evals"],
                    row["flat"]["predicate_evals"],
                ]
                for row in agreement
            ],
            note=f"ideal coin, unit-delay network, TRACE_OFF; artifact: {path.name}",
        )
    )
    emit(
        render_table(
            "Queue micro: heap vs bucketed calendar queue",
            ["queue", "events/sec"],
            [
                ["binary heap", f"{queue['heap_events_per_sec']:,.0f}"],
                ["calendar buckets", f"{queue['bucket_events_per_sec']:,.0f}"],
                ["speedup", f"{queue['speedup']:.2f}x"],
            ],
        )
    )

    # Acceptance gates of this PR.
    n10 = next(row for row in agreement if row["n"] == 10)
    assert n10["speedup"] >= 2.0, n10
    for row in agreement:
        # Legacy polls the wait predicate at least once per event; the flat
        # engine's notification-driven waits are O(state changes).
        assert row["legacy"]["predicate_evals"] >= row["legacy"]["events_dispatched"]
        assert row["flat"]["predicate_evals"] <= row["flat"]["events_dispatched"] / 5
