"""E10 / Table 6 — Reliable Broadcast substrate (paper Appendix A).

Checks the measured message cost against the analytic ``2n^2 + n`` and the
agreement property under an equivocating origin, across n.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.broadcast.manager import BroadcastManager
from repro.config import SystemConfig
from repro.sim.runtime import Runtime

NS = (4, 7, 10, 13, 16)


def _measure(n: int):
    cfg = SystemConfig(n=n, seed=0)
    rt = Runtime(cfg)
    managers = {pid: BroadcastManager(rt.host(pid)) for pid in cfg.pids}
    delivered = {pid: [] for pid in cfg.pids}
    for pid in cfg.pids:
        managers[pid].subscribe(
            "x", lambda o, v, pid=pid: delivered[pid].append(v)
        )
    managers[1].broadcast((1, "x", 0), ("x", "payload"))
    rt.run_to_quiescence()
    msgs = rt.trace.total_messages
    ok = all(delivered[pid] == [("x", "payload")] for pid in cfg.pids)

    # equivocation trial: raw type-1 split
    rt2 = Runtime(SystemConfig(n=n, seed=1))
    managers2 = {pid: BroadcastManager(rt2.host(pid)) for pid in cfg.pids}
    delivered2 = {pid: [] for pid in cfg.pids}
    for pid in cfg.pids:
        managers2[pid].subscribe(
            "x", lambda o, v, pid=pid: delivered2[pid].append(v)
        )
    host = rt2.host(1)
    for dst in cfg.pids:
        value = ("x", "A") if dst % 2 == 0 else ("x", "B")
        host.send(dst, ("b1", (1, "x", 0), value), "rb")
    rt2.run_to_quiescence()
    values = {v for msgs_ in delivered2.values() for v in msgs_}
    return msgs, ok, len(values)


def test_e10_broadcast(benchmark, emit):
    def experiment():
        return {n: _measure(n) for n in NS}

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for n, (msgs, ok, distinct) in measured.items():
        rows.append(
            [n, msgs, 2 * n * n + n, "yes" if ok else "NO", distinct]
        )
        assert msgs == 2 * n * n + n
        assert ok
        assert distinct <= 1
    emit(
        render_table(
            "E10 (Table 6): Reliable Broadcast cost + equivocation safety",
            ["n", "messages", "2n^2+n", "all delivered same", "values under equivocation"],
            rows,
            note="RB cost matches the analytic formula exactly; an "
            "equivocating origin never yields two delivered values",
        )
    )
