"""E5 / Table 3 — MW-SVSS property grid (paper §2.2, Lemma 2).

Measures each MW-SVSS property across an adversary × scheduler grid:
moderated validity of termination, termination, validity(+shun), weak &
moderated binding(+shun).  Every cell reports violations observed without a
compensating shun record — the paper's claim is that this count is zero.
"""

from __future__ import annotations

import random

from repro.adversary.behaviors import (
    EquivocatingDealerBehavior,
    LyingConfirmerBehavior,
    LyingReconstructorBehavior,
    SilentBehavior,
)
from repro.adversary.controller import Adversary, no_adversary
from repro.analysis.tables import render_table
from repro.config import SystemConfig
from repro.core.api import run_mwsvss
from repro.core.mwsvss import BOTTOM
from repro.sim.scheduler import ExponentialDelayScheduler

SECRET = 42
SEEDS = range(6)

ADVERSARIES = {
    "none": lambda seed: no_adversary(),
    "silent": lambda seed: Adversary({4: SilentBehavior()}),
    "lying confirmer": lambda seed: Adversary(
        {4: LyingConfirmerBehavior(random.Random(seed))}
    ),
    "lying reconstructor": lambda seed: Adversary(
        {3: LyingReconstructorBehavior(random.Random(seed))}
    ),
    "equivocating dealer": lambda seed: Adversary(
        {1: EquivocatingDealerBehavior(random.Random(seed))}
    ),
}


def _grid():
    rows = []
    for name, factory in ADVERSARIES.items():
        share_ok = recon_ok = value_ok = unpunished = 0
        for seed in SEEDS:
            cfg = SystemConfig(n=4, seed=seed)
            adversary = factory(seed)
            sched = ExponentialDelayScheduler(cfg.derive_rng("e5"), mean=3.0)
            result, stack = run_mwsvss(
                cfg,
                dealer=1,
                moderator=2,
                secret=SECRET,
                adversary=adversary,
                scheduler=sched,
            )
            honest = [p for p in cfg.pids if p not in adversary.corrupt_pids]
            dealer_honest = 1 not in adversary.corrupt_pids
            share_ok += set(honest) <= result.share_completed
            recon_ok += set(honest) <= set(result.outputs)
            outs = {result.outputs.get(p) for p in honest} - {None}
            if dealer_honest:
                clean = outs <= {SECRET, BOTTOM}
            else:
                clean = len(outs - {BOTTOM}) <= 1
            value_ok += clean
            if not clean and not result.trace.shun_pairs():
                unpunished += 1
        rows.append([name, f"{share_ok}/{len(SEEDS)}", f"{recon_ok}/{len(SEEDS)}",
                     f"{value_ok}/{len(SEEDS)}", unpunished])
    return rows


def test_e5_mwsvss_properties(benchmark, emit):
    rows = benchmark.pedantic(_grid, rounds=1, iterations=1)
    emit(
        render_table(
            "E5 (Table 3): MW-SVSS properties, n=4, adversary grid",
            [
                "adversary",
                "honest shares complete",
                "honest reconstruct",
                "value in {s, bottom} / bound",
                "violations w/o shun",
            ],
            rows,
            note="Lemma 2 shape: completion columns full; any value-column "
            "miss must be compensated by a shun (last column all zero)",
        )
    )
    for row in rows:
        assert row[4] == 0, f"unpunished property violation under {row[0]}"
