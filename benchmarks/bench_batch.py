"""Batched-agreement benchmark — emits ``BENCH_batch.json``.

Measures the instance-multiplexing refactor end to end: ``K`` concurrent
agreement instances on one runtime (``run_byzantine_agreement_batch``,
shared round coin) against ``K`` sequential solo stacks.

1. **SVSS batch throughput** (the acceptance gate): aggregate decisions
   per second at ``n = 7`` for ``K ∈ {1, 4, 16}``, full shunning-coin
   stack, unit-delay network, ``TRACE_OFF``.  The sequential baseline's
   aggregate throughput is ``K`` decisions in ``K`` solo runs — i.e.
   ``1 / t_solo`` independent of ``K`` — so one timed solo run prices the
   whole baseline.  Gate: ``K = 16`` batched ≥ 2x sequential (measured
   headroom is ~an order of magnitude: the coin is ~97% of a solo run's
   events and the batch pays it once per round instead of per instance).
2. **Ideal-coin multiplexing overhead**: the same series with a free coin
   — there is nothing to amortize, so this pins the cost of multiplexing
   itself (expected ~1x, i.e. the demux layer is not a tax).
3. **Ideal-coin + vote coalescing**: the same free-coin series with
   ``coalesce_votes=True`` — all ``K`` instances' votes per
   (round, phase) ride one envelope per (src, dst) pair, so the batch
   dispatches roughly *one* instance's worth of events and the series
   turns ~K×-shaped.  This isolates the wire-coalescing win from the
   coin-amortization win.

The JSON artifact is committed at the repo root so the perf trajectory is
diffable across PRs, next to ``BENCH_algebra.json`` / ``BENCH_engine.json``.
"""

from __future__ import annotations

import time

from bench_common import bench_payload, best_of, fast_agreement, fast_batch, write_bench_json
from repro.analysis.tables import render_table

N = 7
KS = (1, 4, 16)
SEED = 3


def _solo(coin) -> float:
    start = time.perf_counter()
    fast_agreement(N, SEED, coin)
    return time.perf_counter() - start


def _batch(k: int, coin, coalesce: bool) -> tuple[float, int, int]:
    start = time.perf_counter()
    result = fast_batch(k, N, SEED, coin, coalesce_votes=coalesce)
    seconds = time.perf_counter() - start
    return seconds, result.events_dispatched, result.max_rounds


def _series(coin, repeats: int, coalesce: bool = False) -> dict:
    solo_seconds = best_of(lambda: _solo(coin), repeats=repeats)
    sequential_rate = 1.0 / solo_seconds  # K decisions / (K * t_solo)
    rows = []
    for k in KS:
        seconds, events, rounds = _batch(k, coin, coalesce)
        rows.append(
            {
                "k": k,
                "seconds": seconds,
                "events_dispatched": events,
                "max_rounds": rounds,
                "decisions_per_sec": k / seconds,
                "speedup_vs_sequential": (k / seconds) / sequential_rate,
            }
        )
    return {
        "solo_seconds": solo_seconds,
        "sequential_decisions_per_sec": sequential_rate,
        "coalesce_votes": coalesce,
        "batches": rows,
    }


def test_bench_batch(emit):
    svss = _series("svss", repeats=2)
    ideal = _series(("ideal", 1.0), repeats=3)
    ideal_coalesced = _series(("ideal", 1.0), repeats=3, coalesce=True)
    payload = bench_payload(
        {
            "n": N,
            "ks": list(KS),
            "scheduler": "FifoScheduler",
            "trace_level": "TRACE_OFF",
            "seed": SEED,
            "share_coin": True,
        },
        svss=svss,
        ideal=ideal,
        ideal_coalesced=ideal_coalesced,
    )
    path = write_bench_json("batch", payload)

    def table(title: str, series: dict) -> str:
        return render_table(
            title,
            ["K", "events", "rounds", "seconds", "decisions/s", "vs sequential"],
            [
                [
                    row["k"],
                    f"{row['events_dispatched']:,}",
                    row["max_rounds"],
                    f"{row['seconds']:.2f}",
                    f"{row['decisions_per_sec']:.2f}",
                    f"{row['speedup_vs_sequential']:.2f}x",
                ]
                for row in series["batches"]
            ],
            note=(
                f"sequential baseline: {series['solo_seconds']:.2f}s/solo run "
                f"= {series['sequential_decisions_per_sec']:.2f} decisions/s; "
                f"artifact: {path.name}"
            ),
        )

    emit(table(f"Batched agreement, SVSS shared round coin (n={N})", svss))
    emit(table(f"Batched agreement, ideal coin (multiplexing overhead, n={N})", ideal))
    emit(
        table(
            f"Batched agreement, ideal coin + coalesce_votes (n={N})",
            ideal_coalesced,
        )
    )

    # Acceptance gate of PR 3: K=16 batched >= 2x the aggregate
    # decisions/sec of 16 sequential stacks, full SVSS stack.
    k16 = next(row for row in svss["batches"] if row["k"] == 16)
    assert k16["speedup_vs_sequential"] >= 2.0, k16
    # The multiplexing layer itself must not tax the free-coin path by
    # more than dispatch noise.
    k1 = next(row for row in ideal["batches"] if row["k"] == 1)
    assert k1["speedup_vs_sequential"] >= 0.5, k1
    # Vote coalescing converts the free-coin series from flat to K-shaped:
    # the K=16 coalesced batch must dispatch close to one instance's worth
    # of events (<= 1/8 of the uncoalesced batch's bill).
    k16_off = next(row for row in ideal["batches"] if row["k"] == 16)
    k16_on = next(row for row in ideal_coalesced["batches"] if row["k"] == 16)
    assert k16_on["events_dispatched"] * 8 <= k16_off["events_dispatched"], (
        k16_off,
        k16_on,
    )
