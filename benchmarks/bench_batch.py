"""Batched-agreement benchmark — emits ``BENCH_batch.json``.

Measures the instance-multiplexing refactor end to end: ``K`` concurrent
agreement instances on one runtime (``run_byzantine_agreement_batch``,
shared round coin) against ``K`` sequential solo stacks.

1. **SVSS batch throughput** (the acceptance gate): aggregate decisions
   per second at ``n = 7`` for ``K ∈ {1, 4, 16}``, full shunning-coin
   stack, unit-delay network, ``TRACE_OFF``.  The sequential baseline's
   aggregate throughput is ``K`` decisions in ``K`` solo runs — i.e.
   ``1 / t_solo`` independent of ``K`` — so one timed solo run prices the
   whole baseline.  Gate: ``K = 16`` batched ≥ 2x sequential (measured
   headroom is ~an order of magnitude: the coin is ~97% of a solo run's
   events and the batch pays it once per round instead of per instance).
2. **Ideal-coin multiplexing overhead**: the same series with a free coin
   — there is nothing to amortize, so this pins the cost of multiplexing
   itself (expected ~1x, i.e. the demux layer is not a tax).

The JSON artifact is committed at the repo root so the perf trajectory is
diffable across PRs, next to ``BENCH_algebra.json`` / ``BENCH_engine.json``.
"""

from __future__ import annotations

import platform
import time

from bench_common import best_of, write_bench_json
from repro.analysis.tables import render_table
from repro.config import SystemConfig
from repro.core.api import run_byzantine_agreement, run_byzantine_agreement_batch
from repro.sim.scheduler import FifoScheduler
from repro.sim.tracing import TRACE_OFF

N = 7
KS = (1, 4, 16)
SEED = 3


def _inputs(k: int) -> list[list[int]]:
    return [[(i + shift) % 2 for i in range(N)] for shift in range(k)]


def _solo(coin) -> float:
    start = time.perf_counter()
    result = run_byzantine_agreement(
        _inputs(1)[0],
        SystemConfig(n=N, seed=SEED),
        coin=coin,
        scheduler=FifoScheduler(),
        trace_level=TRACE_OFF,
    )
    seconds = time.perf_counter() - start
    assert result.agreed, f"solo {coin} failed to agree"
    return seconds


def _batch(k: int, coin) -> tuple[float, int, int]:
    start = time.perf_counter()
    result = run_byzantine_agreement_batch(
        _inputs(k),
        SystemConfig(n=N, seed=SEED),
        coin=coin,
        scheduler=FifoScheduler(),
        trace_level=TRACE_OFF,
    )
    seconds = time.perf_counter() - start
    assert result.agreed, f"batch K={k} {coin} failed to agree"
    return seconds, result.events_dispatched, result.max_rounds


def _series(coin, repeats: int) -> dict:
    solo_seconds = best_of(lambda: _solo(coin), repeats=repeats)
    sequential_rate = 1.0 / solo_seconds  # K decisions / (K * t_solo)
    rows = []
    for k in KS:
        seconds, events, rounds = _batch(k, coin)
        rows.append(
            {
                "k": k,
                "seconds": seconds,
                "events_dispatched": events,
                "max_rounds": rounds,
                "decisions_per_sec": k / seconds,
                "speedup_vs_sequential": (k / seconds) / sequential_rate,
            }
        )
    return {
        "solo_seconds": solo_seconds,
        "sequential_decisions_per_sec": sequential_rate,
        "batches": rows,
    }


def test_bench_batch(emit):
    svss = _series("svss", repeats=2)
    ideal = _series(("ideal", 1.0), repeats=3)
    payload = {
        "python": platform.python_version(),
        "scenario": {
            "n": N,
            "ks": list(KS),
            "scheduler": "FifoScheduler",
            "trace_level": "TRACE_OFF",
            "seed": SEED,
            "share_coin": True,
        },
        "svss": svss,
        "ideal": ideal,
    }
    path = write_bench_json("batch", payload)

    def table(title: str, series: dict) -> str:
        return render_table(
            title,
            ["K", "events", "rounds", "seconds", "decisions/s", "vs sequential"],
            [
                [
                    row["k"],
                    f"{row['events_dispatched']:,}",
                    row["max_rounds"],
                    f"{row['seconds']:.2f}",
                    f"{row['decisions_per_sec']:.2f}",
                    f"{row['speedup_vs_sequential']:.2f}x",
                ]
                for row in series["batches"]
            ],
            note=(
                f"sequential baseline: {series['solo_seconds']:.2f}s/solo run "
                f"= {series['sequential_decisions_per_sec']:.2f} decisions/s; "
                f"artifact: {path.name}"
            ),
        )

    emit(table(f"Batched agreement, SVSS shared round coin (n={N})", svss))
    emit(table(f"Batched agreement, ideal coin (multiplexing overhead, n={N})", ideal))

    # Acceptance gate of this PR: K=16 batched >= 2x the aggregate
    # decisions/sec of 16 sequential stacks, full SVSS stack.
    k16 = next(row for row in svss["batches"] if row["k"] == 16)
    assert k16["speedup_vs_sequential"] >= 2.0, k16
    # The multiplexing layer itself must not tax the free-coin path by
    # more than dispatch noise.
    k1 = next(row for row in ideal["batches"] if row["k"] == 1)
    assert k1["speedup_vs_sequential"] >= 0.5, k1
