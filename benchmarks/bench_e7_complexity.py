"""E7 / Figure 3 — polynomial efficiency (paper abstract, §1).

Measures messages (and estimated bytes) per protocol layer against n and
fits log-log slopes.  The claim under test: every layer's cost is
polynomial in n, with small exponents:

* RB: exactly 2n^2 + n messages (slope 2);
* MW-SVSS share+reconstruct: Theta(n^3) (n broadcasts of RB cost);
* SVSS: Theta(n^5) (2n^2 MW-SVSS instances);
* the coin multiplies SVSS by n^2 — measured at n=4 and cross-checked
  against the SVSS fit rather than swept (a single n=10 coin flip is ~50M
  simulated messages; the fit-based extrapolation is the point).
"""

from __future__ import annotations

from repro.analysis.complexity import fit_power_law
from repro.analysis.tables import render_table
from repro.config import SystemConfig
from repro.core.api import build_stack, flip_common_coin, run_mwsvss, run_svss

RB_NS = (4, 7, 10, 13, 16, 20)
MW_NS = (4, 7, 10, 13)
SVSS_NS = (4, 7, 10)


def _rb_points():
    from repro.broadcast.manager import BroadcastManager  # noqa: F401

    points = []
    for n in RB_NS:
        cfg = SystemConfig(n=n, seed=0)
        stack = build_stack(cfg, with_vss=False)
        stack.broadcasts[1].subscribe("x", lambda o, v: None)
        stack.broadcasts[1].broadcast((1, "x", 0), ("x", "payload"))
        stack.runtime.run_to_quiescence()
        points.append((n, stack.trace.total_messages))
    return points


def _mw_points():
    points = []
    for n in MW_NS:
        cfg = SystemConfig(n=n, seed=0)
        result, _ = run_mwsvss(cfg, dealer=1, moderator=2, secret=7)
        points.append((n, result.trace.total_messages))
    return points


def _svss_points():
    points = []
    for n in SVSS_NS:
        cfg = SystemConfig(n=n, seed=0)
        result, _ = run_svss(cfg, dealer=1, secret=7)
        points.append((n, result.trace.total_messages))
    return points


def _coin_point():
    cfg = SystemConfig(n=4, seed=0)
    result, _ = flip_common_coin(cfg)
    return (4, result.trace.total_messages)


def test_e7_complexity(benchmark, emit):
    def experiment():
        return _rb_points(), _mw_points(), _svss_points(), _coin_point()

    rb, mw, svss, coin = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rb_fit = fit_power_law(rb)
    mw_fit = fit_power_law(mw)
    svss_fit = fit_power_law(svss)
    coin_ratio = coin[1] / dict(svss)[4]
    rows = [
        ["RB", str(rb), f"n^{rb_fit.exponent:.2f}", "n^2 (2n^2+n exactly)"],
        ["MW-SVSS", str(mw), f"n^{mw_fit.exponent:.2f}", "n^3"],
        ["SVSS", str(svss), f"n^{svss_fit.exponent:.2f}", "n^5"],
        [
            "SCC coin",
            f"n=4: {coin[1]} msgs",
            f"{coin_ratio:.1f}x SVSS(4) ~ n^2 sharings",
            "n^2 x SVSS = n^7",
        ],
    ]
    emit(
        render_table(
            "E7 (Figure 3): messages vs n per layer, log-log fits",
            ["layer", "measurements (n, msgs)", "fitted", "paper-analytic"],
            rows,
            note="all fits are polynomial with small exponents - the "
            "paper's efficiency claim; exact RB formula checked below",
        )
    )
    for n, msgs in rb:
        assert msgs == 2 * n * n + n
    assert 1.9 <= rb_fit.exponent <= 2.1
    assert 2.3 <= mw_fit.exponent <= 3.5
    assert 4.0 <= svss_fit.exponent <= 5.5
    assert coin_ratio > 5.0  # the n^2 sharings dominate one SVSS
