"""E8 / Table 5 — almost-sure termination vs Canetti-Rabin's ε gap
(paper §1, [4, 5]).

Under the adversarial vote-balancing schedule, an agreement protocol
survives only as long as its coin can agree.  The CR93-style ε-failure
coin fails each round independently with probability ε forever, so the
probability of being stuck after R rounds is ~(stuck-per-round)^R > 0 —
while the paper's shunning coin has at most t(n-t) breakable rounds, after
which it always agrees.
"""

from __future__ import annotations

from repro.adversary.schedulers import VoteBalancingScheduler
from repro.analysis.tables import render_table
from repro.config import SystemConfig
from repro.core.api import run_byzantine_agreement
from repro.protocols.cr_avss import cr_coin

SEEDS = range(10)
ROUND_CAP = 40
EPSILONS = (0.0, 0.2, 0.5, 1.0)


def _stuck_rate(coin_factory):
    stuck = 0
    total_rounds = []
    for seed in SEEDS:
        cfg = SystemConfig(n=4, seed=seed)
        result = run_byzantine_agreement(
            [0, 1, 0, 1],
            cfg,
            coin=coin_factory(cfg),
            scheduler=VoteBalancingScheduler(cfg),
            max_rounds=ROUND_CAP,
        )
        if result.terminated and result.agreed:
            total_rounds.append(result.max_rounds)
        else:
            stuck += 1
    mean_rounds = (
        sum(total_rounds) / len(total_rounds) if total_rounds else float("nan")
    )
    return stuck, mean_rounds


def test_e8_termination(benchmark, emit):
    def experiment():
        measured = {}
        for eps in EPSILONS:
            measured[f"CR93 eps={eps}"] = _stuck_rate(
                lambda cfg, eps=eps: cr_coin(cfg, eps)
            )
        measured["ADH08 (perfect-agreement coin)"] = _stuck_rate(
            lambda cfg: ("ideal", 1.0)
        )
        return measured

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name, f"{stuck}/{len(SEEDS)}", f"{mean:.1f}" if mean == mean else "-"]
        for name, (stuck, mean) in measured.items()
    ]
    emit(
        render_table(
            f"E8 (Table 5): stuck runs at round cap {ROUND_CAP}, "
            "vote-balancing schedule, split inputs (n=4)",
            ["coin", "stuck runs", "mean rounds when done"],
            rows,
            note="expected shape: stuck rate grows with eps and hits "
            "100% at eps=1; the ADH08-style coin never gets stuck",
        )
    )
    assert measured["CR93 eps=1.0"][0] == len(SEEDS)
    assert measured["ADH08 (perfect-agreement coin)"][0] == 0
    assert measured["CR93 eps=0.0"][0] == 0
