"""E3 / Figure 2 — SCC correctness (paper §5, Definition 2, Lemma 4).

Runs the full SVSS shunning common coin and measures, over many seeded
invocations:

* termination (every honest process outputs a bit);
* unanimity in fault-free runs;
* per-value frequency — Definition 2 promises each value with probability
  at least 1/4, so over k runs each value should appear roughly in
  [k/4 - noise, 3k/4 + noise].

Byzantine variant: a biased dealer (all-zero secrets) must not break
unanimity or pin the coin.
"""

from __future__ import annotations

from bench_common import measure_coin
from repro.adversary.behaviors import BiasedCoinBehavior
from repro.adversary.controller import Adversary
from repro.analysis.stats import proportion_ci95
from repro.analysis.tables import render_table

FAULT_FREE_SEEDS = range(100, 112)
BYZANTINE_SEEDS = range(300, 306)


def test_e3_coin_quality(benchmark, emit):
    def experiment():
        clean = measure_coin(4, FAULT_FREE_SEEDS)
        biased = measure_coin(
            4,
            BYZANTINE_SEEDS,
            adversary_factory=lambda cfg, seed: Adversary({3: BiasedCoinBehavior()}),
        )
        return clean, biased

    clean, biased = benchmark.pedantic(experiment, rounds=1, iterations=1)

    unanimous = sum(
        1 for result, _ in clean if len(set(result.outputs.values())) == 1
    )
    zeros = sum(
        1 for result, _ in clean if set(result.outputs.values()) == {0}
    )
    ones = sum(1 for result, _ in clean if set(result.outputs.values()) == {1})
    k = len(clean)
    low0, high0 = proportion_ci95(zeros, k)
    low1, high1 = proportion_ci95(ones, k)

    b_unanimous = sum(
        1
        for result, _ in biased
        if len({result.outputs[p] for p in (1, 2, 4)}) == 1
    )
    b_ones = sum(
        1 for result, _ in biased if 1 in {result.outputs[p] for p in (1, 2, 4)}
    )

    emit(
        render_table(
            "E3 (Figure 2): shunning common coin quality (n=4, full stack)",
            ["metric", "fault-free", "biased dealer (all-zero secrets)"],
            [
                ["runs", k, len(biased)],
                ["terminated", k, len(biased)],
                ["unanimous", f"{unanimous}/{k}", f"{b_unanimous}/{len(biased)}"],
                ["all-output-0 frequency", f"{zeros}/{k} (CI {low0:.2f}-{high0:.2f})", "-"],
                ["all-output-1 frequency", f"{ones}/{k} (CI {low1:.2f}-{high1:.2f})", "-"],
                ["output 1 despite bias", "-", f"{b_ones}/{len(biased)}"],
            ],
            note="Definition 2 promises a WEAK common coin: P[all output b] "
            ">= 1/4 for each b; the remaining probability mass may disagree "
            "(eval sets differ across processes), which the unanimity row "
            "shows. The ABA only consumes the two >= 1/4 events.",
        )
    )
    # Definition 2's actual guarantees: termination always; each all-b
    # event with constant frequency (>= 1/4 in theory; with 12 runs we
    # check both events occur and jointly dominate).
    assert zeros >= 1 and ones >= 1, "both all-b events must occur"
    assert unanimous >= k // 2, "unanimity should dominate fault-free runs"
    assert b_ones >= 1, "biased dealer must not pin the coin to 0"
