"""E2 / Figure 1 — expected rounds vs n: common coin stays flat, local
coins blow up (paper §1, §5).

Three measurements:

1. **End-to-end, common coin**: expected rounds flat in n (the ADH08
   shape; the coin itself is validated in E3).
2. **The blow-up mechanism**: with private coins, a round can only
   deterministically unify the estimates when every honest process' local
   coin lands the same way — probability ``2^(1-h)`` for ``h`` honest
   processes.  We measure that alignment probability per n; its reciprocal
   is the Ben-Or/Bracha expected-round blow-up the paper cites
   ("expected number of rounds is exponential in n").
3. **End-to-end adversarial check**: under the vote-balancing schedule
   with rebalancing liars, the common-coin protocol always finishes within
   a few rounds.  (The local-coin baselines stay *live* here too — their
   almost-sure termination is real; the exponential expectation is a
   worst-case-adversary statement, and the full-information adaptive
   adversary that forces it is out of scope.  The alignment series above
   measures exactly the per-round event that adversary denies.)
"""

from __future__ import annotations

import random

from bench_common import measure_agreement_rounds
from repro.adversary.behaviors import ABALiarBehavior
from repro.adversary.controller import Adversary
from repro.adversary.schedulers import VoteBalancingScheduler
from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.config import SystemConfig, max_faults
from repro.core.api import run_byzantine_agreement

SEEDS = range(12)
COMMON_NS = (4, 7, 10, 13, 16)
ALIGN_NS = (4, 7, 10, 13, 16, 19)
ALIGN_TRIALS = 4000
CONTRAST_N = 5
CONTRAST_CAP = 1500


def _common_series():
    series = []
    for n in COMMON_NS:
        rounds, stuck = measure_agreement_rounds(n, ("ideal", 1.0), SEEDS)
        assert stuck == 0
        series.append((n, summarize([float(r) for r in rounds]).mean))
    return series


def _alignment_series():
    """P[h honest local coins all agree], measured by sampling."""
    series = []
    rng = random.Random(2024)
    for n in ALIGN_NS:
        h = n - max_faults(n)
        aligned = 0
        for _ in range(ALIGN_TRIALS):
            first = rng.randrange(2)
            if all(rng.randrange(2) == first for _ in range(h - 1)):
                aligned += 1
        series.append((n, h, aligned / ALIGN_TRIALS))
    return series


def _adversarial_contrast():
    outcomes = {}
    for coin_name, coin in (("local", "local"), ("common", ("ideal", 1.0))):
        stuck = 0
        done_rounds = []
        for seed in range(4):
            cfg = SystemConfig(n=CONTRAST_N, seed=seed)
            t = cfg.t
            liars = {
                pid: ABALiarBehavior(random.Random(seed * 100 + pid))
                for pid in range(CONTRAST_N, CONTRAST_N - t, -1)
            }
            result = run_byzantine_agreement(
                [i % 2 for i in range(CONTRAST_N)],
                cfg,
                coin=coin,
                adversary=Adversary(liars),
                scheduler=VoteBalancingScheduler(cfg),
                max_rounds=CONTRAST_CAP,
            )
            if result.terminated and result.agreed:
                done_rounds.append(result.max_rounds)
            else:
                stuck += 1
        outcomes[coin_name] = (stuck, done_rounds)
    return outcomes


def test_e2_round_scaling(benchmark, emit):
    def experiment():
        return _common_series(), _alignment_series(), _adversarial_contrast()

    common, alignment, contrast = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [["common coin, end-to-end", n, f"{mean:.2f} rounds", "-"] for n, mean in common]
    for n, h, p in alignment:
        expected = 2.0 ** (1 - h)
        rows.append(
            [
                "local-coin alignment probability",
                n,
                f"{p:.4f} (analytic {expected:.4f})",
                f"=> ~{1 / max(p, 1e-9):.0f} expected rounds to align",
            ]
        )
    for name, (stuck, done) in contrast.items():
        rows.append(
            [
                f"adversarial check ({name} coin, n={CONTRAST_N})",
                CONTRAST_N,
                f"stuck {stuck}/4 at cap {CONTRAST_CAP}",
                f"done rounds: {done or '-'}",
            ]
        )
    emit(
        render_table(
            "E2 (Figure 1): round complexity — flat common coin vs "
            "exponential local coins",
            ["series", "n", "measurement", "implication"],
            rows,
            note="paper shape: common-coin rounds flat; local-coin progress "
            "gated on an exponentially unlikely alignment event (the "
            "quantity a worst-case adversary forces every round); the "
            "common coin finishes in a handful of rounds even under the "
            "balancing adversary",
        )
    )

    common_means = [m for _, m in common]
    assert max(common_means) - min(common_means) < 2.0
    probs = [p for _, _, p in alignment]
    # strict decay where the sampling resolution supports it, monotone
    # (non-strict) in the deep tail where both estimates are ~0
    assert probs[0] > probs[1] > probs[2]
    assert all(a >= b for a, b in zip(probs, probs[1:]))
    assert probs[-1] < 0.01
    common_stuck, common_done = contrast["common"]
    assert common_stuck == 0
    assert all(r <= 10 for r in common_done)
