"""E1 / Table 1 — the paper's three-property comparison (Introduction).

Reproduces the property matrix the paper's introduction argues in prose:
only ADH08 simultaneously delivers optimal resilience (n > 3t),
almost-sure termination, and polynomial efficiency.  Each cell is measured,
not asserted: resilience by running at the protocol's threshold, a.s.
termination by stuck-run counts under the adversarial vote-balancing
schedule, efficiency by round growth.
"""

from __future__ import annotations

from bench_common import measure_agreement_rounds
from repro.adversary.schedulers import VoteBalancingScheduler
from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.config import SystemConfig
from repro.core.api import run_byzantine_agreement
from repro.protocols.benor import run_benor
from repro.protocols.cr_avss import cr_coin

SEEDS = range(8)


def _adh08_cells():
    # resilience: runs at n = 3t + 1 with the full SVSS coin
    cfg = SystemConfig(n=4, seed=0)
    result = run_byzantine_agreement([0, 1, 1, 0], cfg, coin="svss")
    resilient = result.agreed
    # termination under the adversarial schedule (ideal coin emulates the
    # SCC's unanimity; the full stack is exercised above and in E3)
    stuck = 0
    for seed in SEEDS:
        cfg = SystemConfig(n=4, seed=seed)
        r = run_byzantine_agreement(
            [0, 1, 0, 1],
            cfg,
            coin=("ideal", 1.0),
            scheduler=VoteBalancingScheduler(cfg),
            max_rounds=60,
        )
        stuck += not r.terminated
    rounds, _ = measure_agreement_rounds(7, ("ideal", 1.0), SEEDS)
    return resilient, stuck, summarize([float(r) for r in rounds]).mean


def _bracha_cells():
    # Bracha 1984 = our skeleton + local coin; optimally resilient but the
    # expected round count blows up with n (E2 shows the curve).
    rounds, stuck = measure_agreement_rounds(4, "local", SEEDS, max_rounds=2000)
    return True, stuck, summarize([float(r) for r in rounds]).mean


def _benor_cells():
    ok_at_6 = run_benor([0, 1, 0, 1, 0, 1], SystemConfig(n=6, t=1, seed=0)).agreed
    rounds = []
    stuck = 0
    for seed in SEEDS:
        r = run_benor([0, 1, 0, 1, 0, 1], SystemConfig(n=6, t=1, seed=seed), max_rounds=2000)
        if r.terminated:
            rounds.append(float(r.max_rounds))
        else:
            stuck += 1
    return ok_at_6, stuck, summarize(rounds).mean if rounds else float("inf")


def _cr_cells():
    stuck = 0
    for seed in SEEDS:
        cfg = SystemConfig(n=4, seed=seed)
        r = run_byzantine_agreement(
            [0, 1, 0, 1],
            cfg,
            coin=cr_coin(cfg, 1.0),
            scheduler=VoteBalancingScheduler(cfg),
            max_rounds=60,
        )
        stuck += not r.terminated
    rounds, _ = measure_agreement_rounds(
        4, lambda cfg: cr_coin(cfg, 0.05), SEEDS, max_rounds=500
    )
    return True, stuck, summarize([float(r) for r in rounds]).mean


def test_e1_property_matrix(benchmark, emit):
    def experiment():
        return {
            "ADH08 (this paper)": _adh08_cells(),
            "Bracha 1984 (local coin)": _bracha_cells(),
            "Ben-Or 1983 (n > 5t)": _benor_cells(),
            "Canetti-Rabin 1993 (eps-AVSS)": _cr_cells(),
        }

    cells = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for name, (resilient, stuck, mean_rounds) in cells.items():
        n_over = "n>3t" if "Ben-Or" not in name else "n>5t"
        if "Feldman" in name:
            n_over = "n>4t"
        rows.append(
            [
                name,
                f"{n_over} ({'ok' if resilient else 'FAIL'})",
                f"{len(SEEDS) - stuck}/{len(SEEDS)} terminated (adversarial)",
                f"{mean_rounds:.1f} mean rounds",
            ]
        )
    rows.append(
        [
            "Feldman-Micali 1988",
            "n>4t (by construction; not rebuilt)",
            "terminates (synchronous-style coin)",
            "O(1) (claimed)",
        ]
    )
    emit(
        render_table(
            "E1 (Table 1): resilience / a.s. termination / efficiency",
            ["protocol", "resilience", "termination", "efficiency"],
            rows,
            note="expected shape: only ADH08 has all three; CR93 is the only "
            "one stuck under the vote-balancing schedule with a failed coin",
        )
    )
    adh = cells["ADH08 (this paper)"]
    cr = cells["Canetti-Rabin 1993 (eps-AVSS)"]
    assert adh[0] and adh[1] == 0
    assert cr[1] == len(SEEDS)  # CR93 with a dead coin never terminates
