"""Shared measurement helpers for the experiment benchmarks.

Besides the JSON/timing utilities this hosts the stack/run setup shared by
the perf-trajectory benchmarks (``bench_engine.py`` / ``bench_batch.py`` /
``bench_coin.py``): one place defines the canonical "fast run" scenario
(unit-delay FIFO network, ``TRACE_OFF``) so every artifact measures the
same workload shape.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

from repro.adversary.controller import Adversary
from repro.config import SystemConfig
from repro.core.api import (
    flip_common_coin,
    run_byzantine_agreement,
    run_byzantine_agreement_batch,
    run_mwsvss,
    run_svss,
)
from repro.sim.scheduler import FifoScheduler
from repro.sim.tracing import TRACE_OFF

#: Repo root — ``BENCH_*.json`` perf artifacts live here so the trajectory
#: of every optimisation PR is a committed, diffable file.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def write_bench_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a benchmark payload as ``BENCH_<name>.json`` at the repo root."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def logical_messages(result) -> int:
    """Logical protocol messages a run pushed onto the wire.

    The one metric every gate compares across transport modes: envelope
    framing is removed (an envelope counts as its payloads), while a
    ``("svec", ...)`` slot-vector counts as ONE logical message — semantic
    aggregation is exactly what shrinks this number.  Works at
    ``TRACE_OFF`` (computed from the always-on runtime counters) and on
    every result dataclass that carries them.
    """
    return result.logical_messages


def best_of(callable_, repeats: int = 5) -> float:
    """Minimum wall-clock seconds of ``repeats`` calls (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def bench_payload(scenario: dict, **sections) -> dict:
    """The canonical ``BENCH_*.json`` shape: python version + scenario
    stanza + one key per measured series."""
    return {"python": platform.python_version(), "scenario": scenario, **sections}


def rotated_split_inputs(n: int, k: int) -> list[list[int]]:
    """``k`` rows of rotated split inputs (every batch instance differs)."""
    return [[(i + shift) % 2 for i in range(n)] for shift in range(k)]


def fast_agreement(
    n: int, seed: int, coin, engine: str = "flat", coalesce: bool = False, **kw
):
    """One canonical benchmark agreement run: split inputs, unit-delay FIFO
    network, ``TRACE_OFF``.  Asserts agreement and returns the result."""
    result = run_byzantine_agreement(
        [i % 2 for i in range(n)],
        SystemConfig(n=n, seed=seed),
        coin=coin,
        scheduler=FifoScheduler(),
        trace_level=TRACE_OFF,
        engine=engine,
        coalesce=coalesce,
        **kw,
    )
    assert result.agreed, f"n={n} coin={coin!r} engine={engine} failed to agree"
    return result


def fast_batch(k: int, n: int, seed: int, coin, coalesce_votes: bool = False, **kw):
    """One canonical benchmark batch run (same scenario as
    :func:`fast_agreement`, ``k`` rotated-input instances)."""
    result = run_byzantine_agreement_batch(
        rotated_split_inputs(n, k),
        SystemConfig(n=n, seed=seed),
        coin=coin,
        scheduler=FifoScheduler(),
        trace_level=TRACE_OFF,
        coalesce_votes=coalesce_votes,
        **kw,
    )
    assert result.agreed, f"batch K={k} n={n} coin={coin!r} failed to agree"
    return result


def fast_coin_flip(
    n: int,
    seed: int,
    coalesce: bool = False,
    svec: bool = False,
    batch_ingest: bool | None = None,
    algebra_backend: str | None = None,
):
    """One canonical SVSS common-coin invocation (unit-delay FIFO,
    ``TRACE_OFF``); asserts every process output a bit."""
    result, stack = flip_common_coin(
        SystemConfig(n=n, seed=seed),
        scheduler=FifoScheduler(),
        trace_level=TRACE_OFF,
        coalesce=coalesce,
        svec=svec,
        batch_ingest=batch_ingest,
        algebra_backend=algebra_backend,
    )
    assert set(result.outputs) == set(stack.config.pids), (
        f"n={n} coalesce={coalesce} svec={svec}: "
        "not every process output a coin bit"
    )
    return result


def measure_agreement_rounds(
    n: int,
    coin,
    seeds: range,
    split: bool = True,
    max_rounds: int = 500,
    scheduler_factory=None,
):
    """Round counts for repeated agreement runs; returns (rounds, stuck)."""
    rounds = []
    stuck = 0
    for seed in seeds:
        cfg = SystemConfig(n=n, seed=seed)
        inputs = [(i % 2 if split else 1) for i in range(n)]
        coin_spec = coin(cfg) if callable(coin) else coin
        scheduler = scheduler_factory(cfg) if scheduler_factory else None
        result = run_byzantine_agreement(
            inputs,
            cfg,
            coin=coin_spec,
            max_rounds=max_rounds,
            scheduler=scheduler,
        )
        if result.terminated and result.agreed:
            rounds.append(result.max_rounds)
        else:
            stuck += 1
    return rounds, stuck


def measure_coin(n: int, seeds, adversary_factory=None):
    """Flip the full SVSS coin repeatedly; returns per-run outputs list."""
    runs = []
    for seed in seeds:
        cfg = SystemConfig(n=n, seed=seed)
        adversary = adversary_factory(cfg, seed) if adversary_factory else None
        result, stack = flip_common_coin(cfg, adversary=adversary)
        runs.append((result, stack))
    return runs


def mw_message_cost(n: int, seed: int = 0) -> tuple[int, int]:
    """(messages, bytes) of one fault-free MW-SVSS share+reconstruct."""
    cfg = SystemConfig(n=n, seed=seed)
    from repro.core.api import build_stack  # local import to keep API slim

    result, stack = run_mwsvss(cfg, dealer=1, moderator=2, secret=7)
    return result.trace.total_messages, result.trace.total_bytes


def svss_message_cost(n: int, seed: int = 0) -> int:
    cfg = SystemConfig(n=n, seed=seed)
    result, _ = run_svss(cfg, dealer=1, secret=7)
    return result.trace.total_messages
