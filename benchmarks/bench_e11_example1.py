"""E11 / Figure 5 — the paper's Example 1 (§3.3), regenerated.

Two nonfaulty processes complete one MW-SVSS invocation with different
non-⊥ values (weak binding genuinely violated), and the crafted lie lands
the faulty dealer in a nonfaulty D set — the shun that pays for the break.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.mwsvss import BOTTOM
from repro.scenarios import FAKE_SECRET, TRUE_SECRET, run_example1


def test_e11_example1(benchmark, emit):
    outcome = benchmark.pedantic(run_example1, args=(0,), rounds=1, iterations=1)
    rows = [
        ["share completed at", sorted(outcome.share_completed)],
        ["moderator (1) output", outcome.outputs.get(1)],
        ["process 3 output", outcome.outputs.get(3)],
        ["true secret", TRUE_SECRET],
        ["crafted fake secret", FAKE_SECRET],
        ["nonfaulty disagreement", outcome.disagreement],
        ["dealer shunned", outcome.dealer_shunned],
        ["shun pairs", sorted(outcome.stack.trace.shun_pairs())],
    ]
    emit(
        render_table(
            "E11 (Figure 5): paper Example 1 — weak binding break + shun",
            ["quantity", "value"],
            rows,
            note="expected shape: outputs 42 vs 77 (both non-bottom), "
            "dealer 2 convicted at a nonfaulty process",
        )
    )
    assert outcome.outputs[1] == TRUE_SECRET
    assert outcome.outputs[3] == FAKE_SECRET
    assert outcome.outputs[1] is not BOTTOM and outcome.outputs[3] is not BOTTOM
    assert outcome.dealer_shunned
