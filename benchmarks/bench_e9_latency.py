"""E9 / Figure 4 — Theorem 1 end-to-end: every run agrees; decision
latency distribution.

Random byzantine mixes, exponential network delays, many seeds: agreement
and validity must hold in every single run (these are safety properties —
probability plays no role), and the simulated decision latency
distribution characterizes the protocol's responsiveness.
"""

from __future__ import annotations

import random

from repro.adversary.controller import random_adversary
from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.config import SystemConfig
from repro.core.api import run_byzantine_agreement
from repro.sim.scheduler import ExponentialDelayScheduler

SEEDS = range(40)
KINDS = ["honest_marked", "crash", "silent", "mutator", "aba_liar"]


def _soak(n: int):
    latencies, rounds = [], []
    violations = 0
    for seed in SEEDS:
        rng = random.Random(seed)
        cfg = SystemConfig(n=n, seed=seed)
        adversary = random_adversary(cfg, rng, kinds=KINDS)
        inputs = [rng.randrange(2) for _ in range(n)]
        sched = ExponentialDelayScheduler(cfg.derive_rng("e9"), mean=1.0)
        result = run_byzantine_agreement(
            inputs, cfg, coin=("ideal", 1.0), adversary=adversary, scheduler=sched
        )
        if not (result.terminated and result.agreed):
            violations += 1
            continue
        nonfaulty_inputs = {inputs[p - 1] for p in result.nonfaulty}
        if len(nonfaulty_inputs) == 1 and result.decision != nonfaulty_inputs.pop():
            violations += 1
        latencies.append(result.sim_time)
        rounds.append(float(result.max_rounds))
    return latencies, rounds, violations


def test_e9_latency(benchmark, emit):
    def experiment():
        return {4: _soak(4), 7: _soak(7)}

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for n, (latencies, rounds, violations) in measured.items():
        lat = summarize(latencies)
        rnd = summarize(rounds)
        rows.append(
            [
                n,
                len(SEEDS),
                violations,
                f"{rnd.mean:.1f} (max {rnd.maximum:.0f})",
                f"{lat.mean:.0f} +- {lat.ci95_halfwidth():.0f}",
                f"{lat.maximum:.0f}",
            ]
        )
        assert violations == 0
    emit(
        render_table(
            "E9 (Figure 4): agreement soak + decision latency "
            "(random byzantine mixes, exponential delays)",
            ["n", "runs", "violations", "rounds mean", "sim latency mean", "max"],
            rows,
            note="Theorem 1 shape: zero agreement/validity violations in "
            "every run; latency concentrates around a few network RTTs",
        )
    )
