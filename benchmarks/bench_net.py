"""Socket-transport benchmark — emits ``BENCH_net.json``.

The robustness artifact for the real-network layer (ROADMAP item 1):

1. **Throughput** — messages/second across one directed 2-node link,
   clean and under each throughput-meaningful chaos profile, with the
   exactly-once in-order contract asserted on every run (a fast but
   wrong transport must fail the bench, not win it).
2. **Reconnect recovery** — wall-clock from ``restart_transport`` until
   a backlog queued during the outage is fully delivered in order: the
   price of one crash+reboot resync (epoch handshake + retransmit).
3. **Chaos-safety gate** — every profile in
   :data:`~repro.net.chaos.CHAOS_PROFILES` runs split-input agreement
   with the invariant monitor armed; one violation anywhere fails the
   bench before any number is written.
4. **Sim-equivalence gate** — the decision reached over real sockets is
   bit-identical to the simulator's on the same unanimous inputs: the
   transport may change timing, never outcomes.
5. **Journal overhead gate** — clean-path throughput with the write-ahead
   journal attached must stay within 10% of the journal-less figure
   (the fsync-batching contract).
6. **Restart lifecycle gate** — under *every* chaos profile: SIGKILL one
   OS-process node mid-run, relaunch it from its journal, and the final
   all-n decision must equal the clean no-kill run's.
7. **Impostor-storm gate** — a loop hammering forged HELLOs at every
   node never stalls honest agreement, and every forgery is counted.

The JSON artifact is committed at the repo root next to the other
``BENCH_*.json`` so the transport's trajectory stays diffable across PRs.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import tempfile
import time
from pathlib import Path

from bench_common import bench_payload, write_bench_json
from repro.config import SystemConfig
from repro.core.api import run_byzantine_agreement
from repro.net.chaos import CHAOS_PROFILES, ChaosProxy
from repro.net.cluster import NetCluster
from repro.net.codec import FRAME_AUTH, FRAME_HELLO, encode_frame, encode_value
from repro.net.launch import run_processes
from repro.net.transport import PROTO_VERSION, NetworkNode, TransportConfig
from repro.sim.monitor import InvariantMonitor
from repro.sim.tracing import TRACE_OFF

#: CI's net job sets this to shrink the blast size; gates are identical.
SMOKE = os.environ.get("REPRO_NET_SMOKE") == "1"
BLAST = 4000 if SMOKE else 20000
RECONNECT_BACKLOG = 500 if SMOKE else 2000

FAST = TransportConfig(
    connect_timeout=0.5,
    backoff_base=0.02,
    backoff_max=0.2,
    heartbeat_interval=0.1,
    idle_timeout=2.0,
    rto=0.1,
    down_after=1.0,
)

#: Profiles whose steady-state throughput is meaningful (partition is a
#: heal scenario, not a rate; it is still safety-gated below).
THROUGHPUT_PROFILES = ("none", "drop", "delay", "duplicate", "reorder", "flaky")


async def _wired_pair(profile_name: "str | None", journal_path=None):
    """Two nodes; the 1 -> 2 direction optionally crosses a chaos proxy.
    ``journal_path`` attaches a write-ahead journal to the sender."""
    config = SystemConfig(n=2, t=0, seed=9000)
    a = NetworkNode(
        config, 1, tconfig=FAST, trace_level=TRACE_OFF, journal=journal_path
    )
    b = NetworkNode(config, 2, tconfig=FAST, trace_level=TRACE_OFF)
    await a.start_server()
    await b.start_server()
    proxy = None
    b_addr = ("127.0.0.1", b.port)
    if profile_name is not None:
        proxy = ChaosProxy(
            2, b_addr, CHAOS_PROFILES[profile_name], seed=9000, n=2
        )
        await proxy.start()
        b_addr = ("127.0.0.1", proxy.port)
    a.set_peers({1: ("127.0.0.1", a.port), 2: b_addr})
    b.set_peers({1: ("127.0.0.1", a.port), 2: ("127.0.0.1", b.port)})
    a.start_peers()
    b.start_peers()
    return a, b, proxy


async def _measure_throughput(
    profile_name: str, n_msgs: int, journal_path=None
) -> dict:
    a, b, proxy = await _wired_pair(
        None if profile_name == "none" else profile_name,
        journal_path=journal_path,
    )
    got: list = []
    b.host.register_handler("m", lambda src, msg: got.append(msg))
    start = time.perf_counter()
    for i in range(n_msgs):
        a.dispatch_out(2, ("m", i))
    await b.wait_for(lambda: len(got) >= n_msgs, timeout=180)
    wall = time.perf_counter() - start
    # The exactly-once in-order contract IS the bench's validity condition.
    assert got == [("m", i) for i in range(n_msgs)], (
        f"profile {profile_name}: delivery broke order/uniqueness"
    )
    stats = a.peers[2].stats
    row = {
        "messages": n_msgs,
        "wall_seconds": round(wall, 4),
        "msgs_per_second": round(n_msgs / wall, 1),
        "retransmits": stats.retransmits,
        "reconnects": stats.reconnects,
    }
    await a.close()
    await b.close()
    if proxy is not None:
        link = proxy.stats.get(1)
        if link is not None:
            row["proxy"] = {
                "forwarded": link.forwarded,
                "dropped": link.dropped,
                "duplicated": link.duplicated,
                "reordered": link.reordered,
            }
        await proxy.close()
    return row


async def _measure_reconnect(backlog: int) -> dict:
    a, b, _ = await _wired_pair(None)
    got: list = []
    b.host.register_handler("m", lambda src, msg: got.append(msg))
    for i in range(100):
        a.dispatch_out(2, ("m", i))
    await b.wait_for(lambda: len(got) >= 100, timeout=30)

    await b.stop_transport()
    for i in range(100, 100 + backlog):
        a.dispatch_out(2, ("m", i))  # queued while b is dark
    await asyncio.sleep(0.3)

    start = time.perf_counter()
    await b.restart_transport()
    await b.wait_for(lambda: len(got) >= 100 + backlog, timeout=60)
    recovery = time.perf_counter() - start
    assert got == [("m", i) for i in range(100 + backlog)]
    row = {
        "backlog_frames": backlog,
        "recovery_seconds": round(recovery, 4),
        "reconnects": a.peers[2].stats.reconnects,
    }
    await a.close()
    await b.close()
    return row


async def _chaos_safety_matrix() -> dict:
    rows = {}
    for name in sorted(CHAOS_PROFILES):
        monitor = InvariantMonitor()
        cluster = NetCluster(
            SystemConfig(n=4, seed=9100),
            tconfig=FAST,
            chaos=name,
            with_vss=False,
            trace_level=TRACE_OFF,
            monitor=monitor,
        )
        await cluster.start()
        start = time.perf_counter()
        try:
            decisions = await cluster.run_agreement(
                [0, 1, 0, 1], coin="local", instance=f"bench-{name}",
                timeout=90,
            )
        finally:
            await cluster.close()
        wall = time.perf_counter() - start
        # Gate: all four decide, identically, with the monitor silent
        # (it raises at the violating event, so reaching here is clean).
        assert len(decisions) == 4 and len(set(decisions.values())) == 1, (
            f"profile {name}: agreement broke: {decisions}"
        )
        verdict = monitor.verdict()
        rows[name] = {
            "wall_seconds": round(wall, 4),
            "decision": decisions[1],
            "max_round": verdict["max_round"],
            "decisions_observed": len(verdict["decisions"]),
        }
    return rows


async def _journal_overhead(n_msgs: int) -> dict:
    """Clean-path throughput, journal-less vs journal-attached, measured
    back to back on the same machine.  Gate: within 10%."""
    off = await _measure_throughput("none", n_msgs)
    tmp = tempfile.mkdtemp(prefix="repro-bench-journal-")
    try:
        on = await _measure_throughput(
            "none", n_msgs, journal_path=Path(tmp) / "node-1.journal"
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    ratio = on["msgs_per_second"] / off["msgs_per_second"]
    assert ratio >= 0.9, (
        f"journal hot path too slow: {on['msgs_per_second']} vs "
        f"{off['msgs_per_second']} msg/s (ratio {ratio:.3f} < 0.9)"
    )
    return {
        "journal_off_msgs_per_second": off["msgs_per_second"],
        "journal_on_msgs_per_second": on["msgs_per_second"],
        "ratio": round(ratio, 4),
    }


async def _restart_lifecycle_matrix() -> dict:
    """kill -9 -> relaunch from journal -> rejoin, under every chaos
    profile, across real OS processes.  Gate: zero violations and the
    same decision as the clean no-kill baseline."""
    inputs = [1, 1, 1, 1]
    seed = 9400
    baseline = await run_processes(4, inputs=inputs, seed=seed, timeout=90)
    assert baseline["violations"] == [], baseline["violations"]
    base_decision = baseline["decisions"][0][2]
    rows = {
        "baseline": {
            "decision": base_decision,
            "max_round": baseline["max_round"],
        }
    }
    for name in sorted(CHAOS_PROFILES):
        root = tempfile.mkdtemp(prefix=f"repro-bench-restart-{name}-")
        start = time.perf_counter()
        try:
            verdict = await run_processes(
                4, inputs=inputs, seed=seed, timeout=90,
                chaos=None if name == "none" else name,
                restart={3: (1.0, 2.0)}, journal_dir=root,
                hung_after=30.0,
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)
        wall = time.perf_counter() - start
        assert verdict["violations"] == [], (
            f"profile {name}: {verdict['violations']}"
        )
        decisions = {pid: v for _, pid, v, _ in verdict["decisions"]}
        assert len(decisions) == 4 and set(decisions.values()) == {
            base_decision
        }, f"profile {name}: decisions {decisions} != no-kill {base_decision}"
        rows[name] = {
            "wall_seconds": round(wall, 4),
            "decision": decisions[3],
            "rejoined": verdict["rejoined"],
            "journal_replayed": verdict["journal_replayed"],
        }
    return rows


async def _impostor_storm() -> dict:
    """Forged HELLOs (bad MACs) hammer every node while agreement runs:
    the storm must be counted and must never stall honest liveness."""
    cluster = NetCluster(
        SystemConfig(n=4, seed=9300),
        tconfig=FAST,
        with_vss=False,
        trace_level=TRACE_OFF,
    )
    await cluster.start()
    stop = asyncio.Event()

    async def storm(port: int) -> None:
        forged_hello = encode_frame(
            FRAME_HELLO,
            encode_value(("hello", 1, 999, PROTO_VERSION, 1)),
        )
        forged_auth = encode_frame(
            FRAME_AUTH, encode_value(("auth", 1, b"\x00" * 32))
        )
        while not stop.is_set():
            try:
                _, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(forged_hello + forged_auth)
                await writer.drain()
                writer.close()
            except OSError:
                pass
            await asyncio.sleep(0.005)

    tasks = [
        asyncio.get_running_loop().create_task(storm(node.port))
        for node in cluster.nodes.values()
    ]
    start = time.perf_counter()
    try:
        decisions = await cluster.run_agreement(
            [0, 1, 0, 1], coin="local", instance="storm", timeout=90
        )
        wall = time.perf_counter() - start
        stop.set()
        await asyncio.sleep(0.05)
        rejected = sum(node.auth_rejected for node in cluster.nodes.values())
    finally:
        stop.set()
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        await cluster.close()
    assert len(decisions) == 4 and len(set(decisions.values())) == 1, (
        f"impostor storm stalled agreement: {decisions}"
    )
    assert rejected > 0, "storm ran but nothing was rejected"
    return {
        "wall_seconds": round(wall, 4),
        "auth_rejected": rejected,
        "decision": decisions[1],
    }


async def _sim_equivalence() -> dict:
    inputs = [1, 1, 1, 1]
    seed = 9200
    cluster = NetCluster(
        SystemConfig(n=4, seed=seed),
        tconfig=FAST,
        with_vss=False,
        trace_level=TRACE_OFF,
    )
    await cluster.start()
    try:
        net = await cluster.run_agreement(inputs, coin="local", timeout=90)
    finally:
        await cluster.close()
    sim = run_byzantine_agreement(
        inputs, SystemConfig(n=4, seed=seed), coin="local",
        trace_level=TRACE_OFF,
    )
    assert sim.agreed
    assert net == {pid: sim.decision for pid in (1, 2, 3, 4)}, (
        f"socket decisions {net} != sim decision {sim.decision}"
    )
    return {"inputs": inputs, "net": net[1], "sim": sim.decision}


def test_bench_net(emit):
    async def main():
        chaos_rows = await _chaos_safety_matrix()  # gates run first
        equivalence = await _sim_equivalence()
        restart_rows = await _restart_lifecycle_matrix()
        storm = await _impostor_storm()
        throughput = {
            name: await _measure_throughput(name, BLAST)
            for name in THROUGHPUT_PROFILES
        }
        journal = await _journal_overhead(BLAST)
        reconnect = await _measure_reconnect(RECONNECT_BACKLOG)
        return (
            chaos_rows, equivalence, restart_rows, storm, throughput,
            journal, reconnect,
        )

    (
        chaos_rows, equivalence, restart_rows, storm, throughput,
        journal, reconnect,
    ) = asyncio.run(main())

    payload = bench_payload(
        {
            "smoke": SMOKE,
            "blast_messages": BLAST,
            "reconnect_backlog": RECONNECT_BACKLOG,
            "gates": [
                "every chaos profile keeps split-input agreement safe "
                "under the armed invariant monitor",
                "socket decisions are bit-identical to the simulator's",
                "every throughput run delivered exactly-once in order",
                "kill -9 -> journal relaunch -> rejoin reaches the no-kill "
                "decision under every chaos profile",
                "journal-attached clean throughput within 10% of "
                "journal-less",
                "impostor HELLO storm never stalls honest agreement",
            ],
        },
        chaos_safety=chaos_rows,
        sim_equivalence=equivalence,
        restart_lifecycle=restart_rows,
        impostor_storm=storm,
        throughput=throughput,
        journal_throughput=journal,
        reconnect=reconnect,
    )
    path = write_bench_json("net", payload)

    emit("Socket transport: throughput per chaos profile "
         f"({BLAST} msgs, one directed link)")
    for name in THROUGHPUT_PROFILES:
        row = throughput[name]
        emit(
            f"  {name:10s} {row['msgs_per_second']:>10.1f} msg/s"
            f"   retx={row['retransmits']:<6d}"
            f" wall={row['wall_seconds']:.2f}s"
        )
    emit(
        f"journal overhead: {journal['journal_on_msgs_per_second']:.1f} "
        f"msg/s journaled vs {journal['journal_off_msgs_per_second']:.1f} "
        f"clean (ratio {journal['ratio']:.3f}, gate >= 0.9)"
    )
    emit(
        f"reconnect recovery: {reconnect['backlog_frames']} queued frames "
        f"drained {reconnect['recovery_seconds']:.3f}s after restart"
    )
    emit(
        "chaos-safety matrix: "
        + ", ".join(f"{k}:ok" for k in sorted(chaos_rows))
    )
    emit(
        "restart lifecycle (kill -9 -> journal rejoin): "
        + ", ".join(
            f"{k}:ok" for k in sorted(restart_rows) if k != "baseline"
        )
    )
    emit(
        f"impostor storm: {storm['auth_rejected']} forged HELLOs rejected, "
        f"agreement in {storm['wall_seconds']:.2f}s; artifact: {path.name}"
    )
